(* Tests for the model IR: shapes, layers, graphs, the model zoo. *)

open Compass_nn

let check_shape = Alcotest.testable Shape.pp Shape.equal

(* Shape *)

let test_shape_elements () =
  Alcotest.(check int) "fmap" (3 * 224 * 224)
    (Shape.elements (Shape.feature_map ~channels:3 ~height:224 ~width:224));
  Alcotest.(check int) "vector" 4096 (Shape.elements (Shape.vector 4096))

let test_shape_bytes () =
  Alcotest.(check (float 1e-9)) "4-bit" 0.5
    (Shape.bytes ~activation_bits:4 (Shape.vector 1));
  Alcotest.(check (float 1e-9)) "8-bit" 100.
    (Shape.bytes ~activation_bits:8 (Shape.vector 100))

let test_shape_invalid () =
  Alcotest.check_raises "zero channels"
    (Invalid_argument "Shape.feature_map: non-positive dimension") (fun () ->
      ignore (Shape.feature_map ~channels:0 ~height:1 ~width:1));
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Shape.vector: non-positive dimension") (fun () ->
      ignore (Shape.vector 0))

(* Layer *)

let test_conv_output_shape () =
  let op = Layer.conv ~in_channels:3 ~out_channels:64 3 in
  let out =
    Layer.output_shape op [ Shape.feature_map ~channels:3 ~height:224 ~width:224 ]
  in
  Alcotest.check check_shape "same padding"
    (Shape.feature_map ~channels:64 ~height:224 ~width:224)
    out

let test_conv_stride () =
  let op = Layer.conv ~stride:2 ~padding:3 ~in_channels:3 ~out_channels:64 7 in
  let out =
    Layer.output_shape op [ Shape.feature_map ~channels:3 ~height:224 ~width:224 ]
  in
  Alcotest.check check_shape "resnet stem"
    (Shape.feature_map ~channels:64 ~height:112 ~width:112)
    out

let test_conv_channel_mismatch () =
  let op = Layer.conv ~in_channels:3 ~out_channels:8 3 in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Layer.output_shape op [ Shape.feature_map ~channels:4 ~height:8 ~width:8 ]);
       false
     with Invalid_argument _ -> true)

let test_linear_shapes () =
  let op = Layer.linear ~in_features:400 ~out_features:120 in
  Alcotest.check check_shape "vector out" (Shape.vector 120)
    (Layer.output_shape op [ Shape.vector 400 ]);
  Alcotest.(check bool) "fmap rejected" true
    (try
       ignore
         (Layer.output_shape op [ Shape.feature_map ~channels:1 ~height:20 ~width:20 ]);
       false
     with Invalid_argument _ -> true)

let test_pool_output () =
  let op = Layer.max_pool ~kernel:2 ~stride:2 () in
  Alcotest.check check_shape "halved"
    (Shape.feature_map ~channels:64 ~height:112 ~width:112)
    (Layer.output_shape op [ Shape.feature_map ~channels:64 ~height:224 ~width:224 ])

let test_add_shapes () =
  let s = Shape.feature_map ~channels:8 ~height:4 ~width:4 in
  Alcotest.check check_shape "add" s (Layer.output_shape Layer.Add [ s; s ]);
  Alcotest.(check bool) "mismatch rejected" true
    (try
       ignore (Layer.output_shape Layer.Add [ s; Shape.vector 128 ]);
       false
     with Invalid_argument _ -> true)

let test_concat_shapes () =
  let a = Shape.feature_map ~channels:64 ~height:55 ~width:55 in
  let b = Shape.feature_map ~channels:64 ~height:55 ~width:55 in
  Alcotest.check check_shape "concat"
    (Shape.feature_map ~channels:128 ~height:55 ~width:55)
    (Layer.output_shape Layer.Concat [ a; b ])

let test_flatten_gap () =
  let s = Shape.feature_map ~channels:512 ~height:7 ~width:7 in
  Alcotest.check check_shape "flatten" (Shape.vector 25088)
    (Layer.output_shape Layer.Flatten [ s ]);
  Alcotest.check check_shape "gap" (Shape.vector 512)
    (Layer.output_shape Layer.Global_avg_pool [ s ])

let test_weight_dims () =
  let conv = Layer.conv ~in_channels:64 ~out_channels:128 3 in
  Alcotest.(check int) "conv rows" (64 * 9) (Layer.weight_rows conv);
  Alcotest.(check int) "conv cols" 128 (Layer.weight_cols conv);
  Alcotest.(check int) "conv params" (64 * 9 * 128) (Layer.weight_params conv);
  let lin = Layer.linear ~in_features:4096 ~out_features:1000 in
  Alcotest.(check int) "linear params" 4_096_000 (Layer.weight_params lin);
  Alcotest.(check int) "relu params" 0 (Layer.weight_params Layer.Relu)

let test_mvms_per_sample () =
  let conv = Layer.conv ~in_channels:3 ~out_channels:64 3 in
  let input = [ Shape.feature_map ~channels:3 ~height:32 ~width:32 ] in
  Alcotest.(check int) "one per pixel" (32 * 32) (Layer.mvms_per_sample conv input);
  let lin = Layer.linear ~in_features:10 ~out_features:10 in
  Alcotest.(check int) "one for linear" 1 (Layer.mvms_per_sample lin [ Shape.vector 10 ])

(* Graph *)

let build_diamond () =
  let g = Graph.create ~name:"diamond" () in
  let input =
    Graph.add g "in" (Layer.Input (Shape.feature_map ~channels:4 ~height:8 ~width:8))
  in
  let a =
    Graph.add g ~inputs:[ input ] "a" (Layer.conv ~in_channels:4 ~out_channels:4 3)
  in
  let b = Graph.add g ~inputs:[ a ] "b" (Layer.conv ~in_channels:4 ~out_channels:4 3) in
  let c = Graph.add g ~inputs:[ a ] "c" Layer.Relu in
  let d = Graph.add g ~inputs:[ b; c ] "d" Layer.Add in
  (g, input, a, b, c, d)

let test_graph_edges () =
  let g, input, a, b, c, d = build_diamond () in
  Alcotest.(check (list int)) "preds of d" [ b; c ] (Graph.preds g d);
  Alcotest.(check (list int)) "succs of a" [ b; c ] (Graph.succs g a);
  Alcotest.(check (list int)) "entries" [ input ] (Graph.entry_nodes g);
  Alcotest.(check (list int)) "exits" [ d ] (Graph.exit_nodes g)

let test_graph_topo () =
  let g, _, _, _, _, _ = build_diamond () in
  let order = Graph.topo_order g in
  Alcotest.(check int) "all nodes" (Graph.node_count g) (List.length order);
  let pos = Hashtbl.create 8 in
  List.iteri (fun i n -> Hashtbl.add pos n i) order;
  List.iter
    (fun n ->
      List.iter
        (fun p ->
          Alcotest.(check bool) "pred before" true (Hashtbl.find pos p < Hashtbl.find pos n))
        (Graph.preds g n))
    (Graph.nodes g)

let test_graph_validate_ok () =
  let g, _, _, _, _, _ = build_diamond () in
  Alcotest.(check bool) "valid" true (Graph.validate g = Ok ())

let test_graph_bad_input_rejected () =
  let g = Graph.create () in
  Alcotest.(check bool) "unknown input id" true
    (try
       ignore (Graph.add g ~inputs:[ 42 ] "x" Layer.Relu);
       false
     with Invalid_argument _ -> true)

let test_graph_shape_error_rolls_back () =
  let g = Graph.create () in
  let input = Graph.add g "in" (Layer.Input (Shape.vector 16)) in
  let n = Graph.node_count g in
  (try ignore (Graph.add g ~inputs:[ input ] "bad" (Layer.conv ~in_channels:3 ~out_channels:4 3))
   with Invalid_argument _ -> ());
  Alcotest.(check int) "rolled back" n (Graph.node_count g);
  Alcotest.(check (list int)) "no stale succs" [] (Graph.succs g input)

let test_graph_weighted_nodes () =
  let g, _, a, b, _, _ = build_diamond () in
  Alcotest.(check (list int)) "convs only" [ a; b ] (Graph.weighted_nodes g)

(* Model zoo: the paper's Table II numbers. *)

let summary name = Summary.of_graph (Models.by_name name)

let test_vgg16_sizes () =
  let s = summary "vgg16" in
  Alcotest.(check (float 0.01)) "linear MB" 58.95 s.Summary.linear_mb;
  Alcotest.(check (float 0.01)) "conv MB" 7.01 s.Summary.conv_mb;
  Alcotest.(check (float 0.01)) "total MB" 65.97 s.Summary.total_mb;
  Alcotest.(check int) "13 conv + 3 fc" 16 s.Summary.weighted_layers

let test_resnet18_sizes () =
  let s = summary "resnet18" in
  Alcotest.(check (float 0.01)) "linear MB" 0.244 s.Summary.linear_mb;
  Alcotest.(check (float 0.01)) "conv MB" 5.325 s.Summary.conv_mb;
  Alcotest.(check (float 0.01)) "total MB" 5.569 s.Summary.total_mb;
  (* 20 convs (incl. 3 downsample) + 1 fc *)
  Alcotest.(check int) "weighted" 21 s.Summary.weighted_layers

let test_squeezenet_sizes () =
  let s = summary "squeezenet" in
  Alcotest.(check (float 0.001)) "conv MB" 0.587 s.Summary.conv_mb;
  Alcotest.(check (float 1e-6)) "no linear" 0. s.Summary.linear_mb;
  Alcotest.(check int) "weighted" 26 s.Summary.weighted_layers

let test_all_models_validate () =
  List.iter
    (fun name ->
      let g = Models.by_name name in
      Alcotest.(check bool) (name ^ " valid") true (Graph.validate g = Ok ()))
    Models.all_names

let test_resnet_residual_structure () =
  let g = Models.resnet18 () in
  let adds =
    List.filter (fun n -> (Graph.layer g n).Layer.op = Layer.Add) (Graph.nodes g)
  in
  Alcotest.(check int) "8 residual adds" 8 (List.length adds);
  List.iter
    (fun n -> Alcotest.(check int) "two inputs" 2 (List.length (Graph.preds g n)))
    adds

let test_squeezenet_fire_structure () =
  let g = Models.squeezenet () in
  let concats =
    List.filter (fun n -> (Graph.layer g n).Layer.op = Layer.Concat) (Graph.nodes g)
  in
  Alcotest.(check int) "8 fire concats" 8 (List.length concats)

let test_vgg16_final_shape () =
  let g = Models.vgg16 () in
  let out = List.hd (Graph.exit_nodes g) in
  Alcotest.check check_shape "1000 classes" (Shape.vector 1000) (Graph.shape_of g out)

let test_resnet18_final_shape () =
  let g = Models.resnet18 () in
  let out = List.hd (Graph.exit_nodes g) in
  Alcotest.check check_shape "1000 classes" (Shape.vector 1000) (Graph.shape_of g out)

let test_squeezenet_final_shape () =
  let g = Models.squeezenet () in
  let out = List.hd (Graph.exit_nodes g) in
  Alcotest.check check_shape "1000 classes" (Shape.vector 1000) (Graph.shape_of g out)

let test_by_name_unknown () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Models.by_name "transformer");
       false
     with Not_found -> true)

let test_to_dot () =
  let g = Models.lenet5 () in
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  let count_substring sub s =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length s then acc
      else if String.sub s i n = sub then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "one box per node" (Graph.node_count g)
    (count_substring "shape=box" dot);
  let edges = List.fold_left (fun acc n -> acc + List.length (Graph.preds g n)) 0 (Graph.nodes g) in
  Alcotest.(check int) "one arrow per edge" edges (count_substring " -> " dot)

let test_alexnet_structure () =
  let s = summary "alexnet" in
  (* 5 convs + 3 fc; fc6 dominates (9216 x 4096). *)
  Alcotest.(check int) "weighted" 8 s.Summary.weighted_layers;
  Alcotest.(check bool) "linear-heavy" true (s.Summary.linear_mb > s.Summary.conv_mb);
  let g = Models.alexnet () in
  let out = List.hd (Graph.exit_nodes g) in
  Alcotest.check check_shape "1000 classes" (Shape.vector 1000) (Graph.shape_of g out)

let test_vgg11_structure () =
  let s = summary "vgg11" in
  Alcotest.(check int) "8 conv + 3 fc" 11 s.Summary.weighted_layers;
  (* Shares VGG16's classifier: identical linear storage. *)
  Alcotest.(check (float 1e-6)) "same classifier as vgg16" (summary "vgg16").Summary.linear_mb
    s.Summary.linear_mb

let test_resnet34_structure () =
  let s = summary "resnet34" in
  (* 33 convs (incl. 3 downsample) + 1 fc. *)
  Alcotest.(check int) "weighted" 37 s.Summary.weighted_layers;
  Alcotest.(check bool) "about 10 MB of conv" true
    (s.Summary.conv_mb > 9. && s.Summary.conv_mb < 11.);
  let g = Models.resnet34 () in
  let adds = List.filter (fun n -> (Graph.layer g n).Layer.op = Layer.Add) (Graph.nodes g) in
  Alcotest.(check int) "16 residual adds" 16 (List.length adds)

let test_grouped_conv_dims () =
  let dw = Layer.depthwise ~channels:32 3 in
  Alcotest.(check int) "depthwise rows" 9 (Layer.weight_rows dw);
  Alcotest.(check int) "depthwise cols" 32 (Layer.weight_cols dw);
  Alcotest.(check int) "depthwise params" (32 * 9) (Layer.weight_params dw);
  let grouped = Layer.conv ~groups:4 ~in_channels:16 ~out_channels:8 3 in
  Alcotest.(check int) "grouped rows" (4 * 9) (Layer.weight_rows grouped);
  Alcotest.(check int) "grouped params" (8 * 4 * 9) (Layer.weight_params grouped);
  Alcotest.(check bool) "bad groups rejected" true
    (try
       ignore (Layer.conv ~groups:3 ~in_channels:16 ~out_channels:8 3);
       false
     with Invalid_argument _ -> true)

let test_mobilenet_structure () =
  let s = summary "mobilenet_v1" in
  (* Real MobileNetV1 width 1.0: ~4.2M parameters. *)
  let params = s.Summary.conv_params + s.Summary.linear_params in
  Alcotest.(check bool)
    (Printf.sprintf "~4.2M params (got %d)" params)
    true
    (params > 4_100_000 && params < 4_300_000);
  (* 1 stem + 13 dw + 13 pw + 1 fc. *)
  Alcotest.(check int) "weighted layers" 28 s.Summary.weighted_layers;
  let g = Models.mobilenet_v1 () in
  let out = List.hd (Graph.exit_nodes g) in
  Alcotest.check check_shape "1000 classes" (Shape.vector 1000) (Graph.shape_of g out)

(* Property: random chain models always validate and infer shapes. *)

let random_chain_gen =
  QCheck.Gen.(
    let* n_layers = int_range 1 6 in
    let* channels = int_range 1 8 in
    return (n_layers, channels))

let prop_random_chain_valid =
  QCheck.Test.make ~name:"random conv chains validate" ~count:100
    (QCheck.make random_chain_gen) (fun (n_layers, channels) ->
      let g = Graph.create () in
      let prev =
        ref (Graph.add g "in" (Layer.Input (Shape.feature_map ~channels ~height:16 ~width:16)))
      in
      let c = ref channels in
      for i = 1 to n_layers do
        let out_channels = !c + i in
        prev :=
          Graph.add g ~inputs:[ !prev ]
            (Printf.sprintf "conv%d" i)
            (Layer.conv ~in_channels:!c ~out_channels 3);
        c := out_channels
      done;
      Graph.validate g = Ok ())

let () =
  Alcotest.run "compass_nn"
    [
      ( "shape",
        [
          Alcotest.test_case "elements" `Quick test_shape_elements;
          Alcotest.test_case "bytes" `Quick test_shape_bytes;
          Alcotest.test_case "invalid" `Quick test_shape_invalid;
        ] );
      ( "layer",
        [
          Alcotest.test_case "conv output" `Quick test_conv_output_shape;
          Alcotest.test_case "conv stride" `Quick test_conv_stride;
          Alcotest.test_case "conv channel mismatch" `Quick test_conv_channel_mismatch;
          Alcotest.test_case "linear shapes" `Quick test_linear_shapes;
          Alcotest.test_case "pool output" `Quick test_pool_output;
          Alcotest.test_case "add shapes" `Quick test_add_shapes;
          Alcotest.test_case "concat shapes" `Quick test_concat_shapes;
          Alcotest.test_case "flatten and gap" `Quick test_flatten_gap;
          Alcotest.test_case "weight dims" `Quick test_weight_dims;
          Alcotest.test_case "mvms per sample" `Quick test_mvms_per_sample;
        ] );
      ( "graph",
        [
          Alcotest.test_case "edges" `Quick test_graph_edges;
          Alcotest.test_case "topo order" `Quick test_graph_topo;
          Alcotest.test_case "validate ok" `Quick test_graph_validate_ok;
          Alcotest.test_case "bad input rejected" `Quick test_graph_bad_input_rejected;
          Alcotest.test_case "shape error rolls back" `Quick
            test_graph_shape_error_rolls_back;
          Alcotest.test_case "weighted nodes" `Quick test_graph_weighted_nodes;
          QCheck_alcotest.to_alcotest prop_random_chain_valid;
        ] );
      ( "models",
        [
          Alcotest.test_case "vgg16 Table II sizes" `Quick test_vgg16_sizes;
          Alcotest.test_case "resnet18 Table II sizes" `Quick test_resnet18_sizes;
          Alcotest.test_case "squeezenet Table II sizes" `Quick test_squeezenet_sizes;
          Alcotest.test_case "all models validate" `Quick test_all_models_validate;
          Alcotest.test_case "resnet residual structure" `Quick
            test_resnet_residual_structure;
          Alcotest.test_case "squeezenet fire structure" `Quick
            test_squeezenet_fire_structure;
          Alcotest.test_case "vgg16 final shape" `Quick test_vgg16_final_shape;
          Alcotest.test_case "resnet18 final shape" `Quick test_resnet18_final_shape;
          Alcotest.test_case "squeezenet final shape" `Quick test_squeezenet_final_shape;
          Alcotest.test_case "by_name unknown" `Quick test_by_name_unknown;
          Alcotest.test_case "to_dot" `Quick test_to_dot;
          Alcotest.test_case "alexnet structure" `Quick test_alexnet_structure;
          Alcotest.test_case "vgg11 structure" `Quick test_vgg11_structure;
          Alcotest.test_case "resnet34 structure" `Quick test_resnet34_structure;
          Alcotest.test_case "grouped conv dims" `Quick test_grouped_conv_dims;
          Alcotest.test_case "mobilenet structure" `Quick test_mobilenet_structure;
        ] );
    ]
