(* The paper's headline scenario: VGG16 needs 65.97 MB of weight storage at
   4-bit precision, but chip S holds 1.125 MB.  All-weights-on-chip
   compilers (PUMA, PIMCOMP) cannot map it at all; COMPASS partitions it
   into chip-sized pieces executed with weight replacement.

   Run with:  dune exec examples/vgg16_partitioning.exe *)

open Compass_core

let () =
  let model = Compass_nn.Models.vgg16 () in
  let chip = Compass_arch.Config.chip_s in
  Printf.printf "VGG16 needs %s; chip %s holds %s (%.0fx too small)\n\n"
    (Compass_util.Units.bytes_to_string
       (Compass_nn.Graph.weight_bytes ~weight_bits:4 model))
    chip.Compass_arch.Config.label
    (Compass_util.Units.bytes_to_string (Compass_arch.Config.capacity_bytes chip))
    (Compass_nn.Graph.weight_bytes ~weight_bits:4 model
    /. Compass_arch.Config.capacity_bytes chip);
  Compass_util.Table.print
    (Report.support_table (Compass_nn.Models.evaluation_models ()) chip);

  (* The validity map shows how constrained partitioning is (paper Fig. 5):
     only 3% of (start, end) spans fit the chip. *)
  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  print_newline ();
  print_endline (Validity.render ~cells:24 validity);

  (* Compile with a small GA budget and compare against both baselines. *)
  let batch = 16 in
  print_newline ();
  let rows =
    Report.compare_schemes ~ga_params:Ga.quick_params ~model ~chip ~batch ()
  in
  Compass_util.Table.print (Report.rows_table rows);
  Printf.printf "\nCOMPASS throughput vs greedy: %.2fx, vs layerwise: %.2fx\n"
    (Report.speedup rows ~over:"greedy")
    (Report.speedup rows ~over:"layerwise")
