(* Quickstart: compile a small CNN for the smallest chip preset, inspect the
   plan, then lower it to instructions and simulate one batch.

   Run with:  dune exec examples/quickstart.exe *)

open Compass_core

let () =
  (* 1. Pick a model and a hardware configuration. *)
  let model = Compass_nn.Models.lenet5 () in
  let chip = Compass_arch.Config.chip_s in
  Format.printf "%a@." Compass_arch.Config.pp_chip chip;
  Format.printf "%a@." Compass_nn.Graph.pp_summary model;

  (* 2. Compile: decomposition -> validity map -> GA partition search. *)
  let plan =
    Compiler.compile ~ga_params:Ga.quick_params ~model ~chip ~batch:8 Compiler.Compass
  in
  Format.printf "@.%a@." Compiler.pp_plan plan;

  (* 3. Lower to per-core instruction programs and simulate. *)
  let m = Compiler.measure plan in
  Format.printf "schedule: %d instructions, %s of weights in DRAM@."
    m.Compiler.schedule.Scheduler.instruction_count
    (Compass_util.Units.bytes_to_string
       (float_of_int m.Compiler.schedule.Scheduler.weight_region_bytes));
  Format.printf "simulated makespan: %s (estimator said %s)@."
    (Compass_util.Units.time_to_string m.Compiler.sim.Compass_isa.Sim.makespan_s)
    (Compass_util.Units.time_to_string plan.Compiler.perf.Estimator.batch_latency_s);

  (* 4. Replay the DRAM trace through the LPDDR3 model. *)
  Format.printf "%a@." Compass_dram.Dram.pp_stats m.Compiler.dram
