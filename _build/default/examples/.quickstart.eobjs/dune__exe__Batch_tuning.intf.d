examples/batch_tuning.mli:
