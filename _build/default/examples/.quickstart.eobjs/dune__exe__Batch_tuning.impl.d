examples/batch_tuning.ml: Compass_arch Compass_core Compass_nn Compass_util Dataflow Estimator Ga List Partition Printf Unit_gen Validity
