examples/quickstart.ml: Compass_arch Compass_core Compass_dram Compass_isa Compass_nn Compass_util Compiler Estimator Format Ga Scheduler
