examples/design_space.ml: Compass_arch Compass_core Compass_nn Compass_util Config Explore Ga List Printf
