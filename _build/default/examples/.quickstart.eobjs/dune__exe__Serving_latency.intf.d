examples/serving_latency.mli:
