examples/custom_model.ml: Compass_arch Compass_core Compass_dram Compass_isa Compass_nn Compiler Format Ga List Printf String
