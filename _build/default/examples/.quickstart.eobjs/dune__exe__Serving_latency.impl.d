examples/serving_latency.ml: Array Compass_arch Compass_core Compass_nn Compass_util Compiler Estimator Ga List Printf
