examples/edge_deployment.mli:
