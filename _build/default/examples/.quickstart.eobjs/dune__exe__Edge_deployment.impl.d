examples/edge_deployment.ml: Compass_arch Compass_core Compass_nn Compass_util Compiler Config Crossbar Estimator Fitness Ga List Partition Printf
