examples/verify_partitioning.ml: Baselines Compass_arch Compass_core Compass_nn Compass_util Dataflow Executor Format Graph List Models Partition Partition_exec Printf Quant Tensor Unit_gen Validity
