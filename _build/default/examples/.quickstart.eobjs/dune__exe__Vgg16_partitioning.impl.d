examples/vgg16_partitioning.ml: Compass_arch Compass_core Compass_nn Compass_util Ga Printf Report Unit_gen Validity
