examples/quickstart.mli:
