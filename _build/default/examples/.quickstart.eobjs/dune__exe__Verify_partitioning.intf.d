examples/verify_partitioning.mli:
