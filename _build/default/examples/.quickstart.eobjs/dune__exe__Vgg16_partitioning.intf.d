examples/vgg16_partitioning.mli:
