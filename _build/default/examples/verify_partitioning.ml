(* Functional verification of partitioned execution (paper Fig. 2).

   COMPASS claims its partition-and-replace execution computes the same
   network, just in chip-sized pieces.  This example proves it on real
   numbers: quantize a LeNet-5 to 4-bit weights, partition it for a chip so
   small it needs several weight-replacement rounds, execute it partition
   by partition through the reference tensor engine, and compare against
   whole-model execution.

   Run with:  dune exec examples/verify_partitioning.exe *)

open Compass_core
open Compass_nn

let () =
  let model = Models.lenet5 () in
  (* A deliberately tiny chip: 2 cores x 2 macros = 32 KB of weights. *)
  let chip = Compass_arch.Config.custom ~label:"nano" ~cores:2 ~macros_per_core:2 () in
  Printf.printf "model needs %s; chip holds %s -> replacement required\n\n"
    (Compass_util.Units.bytes_to_string (Graph.weight_bytes ~weight_bits:4 model))
    (Compass_util.Units.bytes_to_string (Compass_arch.Config.capacity_bytes chip));

  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in

  (* 4-bit deployment weights and a random input sample. *)
  let float_weights = Executor.random_weights model in
  let weights = Quant.quantize_weights ~bits:4 float_weights in
  let input = Executor.random_input model in
  let reference = Executor.output model weights input in
  Format.printf "reference output: %a@." Tensor.pp_stats reference;

  (* Partition with each scheme and execute partition-by-partition. *)
  let rng = Compass_util.Rng.create 42 in
  let candidates =
    [
      ("greedy", Baselines.greedy validity);
      ("layerwise", Baselines.layerwise validity);
      ("random", Validity.random_group rng validity);
    ]
  in
  List.iter
    (fun (name, group) ->
      let r = Partition_exec.run ctx group weights input in
      let diff = Tensor.max_abs_diff reference r.Partition_exec.output in
      Printf.printf
        "%-9s: %d partitions, %d global-memory transfers, peak %d live tensors, max |diff| = %g\n"
        name
        (Partition.partition_count group)
        (List.length r.Partition_exec.traffic)
        r.Partition_exec.peak_live_tensors diff;
      assert (diff = 0.))
    candidates;

  print_newline ();
  Printf.printf "quantization cost vs float weights: max |diff| = %g\n"
    (Tensor.max_abs_diff reference (Executor.output model float_weights input));
  print_endline
    "\nEvery partitioning computes the exact same function — the compiler's\n\
     transformation is semantics-preserving, only the weight-replacement\n\
     schedule (and hence latency/energy) changes."
