(* Bringing your own network: describe a model in the textual format
   (COMPASS's ONNX-substitute front end), parse it, and compile it for a
   resource-constrained chip.

   Run with:  dune exec examples/custom_model.exe *)

open Compass_core

(* A small VGG-style CIFAR classifier with a residual tail — the kind of
   custom edge model a PIM deployment actually sees. *)
let description =
  {|# cifar_edge: 3x32x32 -> 10 classes
model cifar_edge
input in 3x32x32
conv c1 from in out=32 kernel=3
relu r1 from c1
conv c2 from r1 out=32 kernel=3
relu r2 from c2
maxpool p1 from r2 kernel=2 stride=2
conv c3 from p1 out=64 kernel=3
relu r3 from c3
conv c4 from r3 out=64 kernel=3
add skip from c4 c3
relu r4 from skip
maxpool p2 from r4 kernel=2 stride=2
flatten f from p2
linear fc1 from f out=256
relu r5 from fc1
linear fc2 from r5 out=10
|}

let () =
  let model = Compass_nn.Model_text.parse description in
  Format.printf "%a@." Compass_nn.Graph.pp_summary model;
  Printf.printf "round-trip check: %d bytes of description\n\n"
    (String.length (Compass_nn.Model_text.to_string model));

  (* Compile for the small chip at two batch sizes. *)
  List.iter
    (fun batch ->
      let plan =
        Compiler.compile ~ga_params:Ga.quick_params ~model
          ~chip:Compass_arch.Config.chip_s ~batch Compiler.Compass
      in
      Format.printf "%a@." Compiler.pp_plan plan)
    [ 1; 16 ];

  (* And show the instruction-level execution of the batch-16 plan. *)
  let plan =
    Compiler.compile ~ga_params:Ga.quick_params ~model
      ~chip:Compass_arch.Config.chip_s ~batch:16 Compiler.Compass
  in
  let m = Compiler.measure plan in
  print_endline (Compass_isa.Timeline.render ~width:70 m.Compiler.sim);
  Format.printf "@.%a@." Compass_dram.Dram.pp_stats m.Compiler.dram
