(* Edge deployment on emerging non-volatile memories (paper Sec. V-B):
   ReRAM and MRAM crossbars make weight writes far more expensive than
   IMC-SRAM, so a partitioning that minimizes rewrites matters even more.
   This example builds ReRAM-like and MRAM-like chips by re-parameterizing
   the crossbar write path, then compiles SqueezeNet for each with the
   energy objective and compares against the SRAM baseline.

   Run with:  dune exec examples/edge_deployment.exe *)

open Compass_core
open Compass_arch

let technology_chips =
  let base = Config.chip_s in
  let variant name ~write_latency ~write_energy =
    let crossbar =
      Crossbar.make ~row_write_latency_s:write_latency
        ~write_energy_per_bit_j:write_energy ()
    in
    ( name,
      Config.custom ~label:base.Config.label ~cores:base.Config.cores
        ~macros_per_core:base.Config.core.Config.macros_per_core ~crossbar
        ~chip_power_w:base.Config.chip_power_w () )
  in
  [
    (* IMC-SRAM prototype numbers (default). *)
    ("sram", { Config.chip_s with Config.label = "S" });
    (* ReRAM: slow, energy-hungry SET/RESET; limited endurance. *)
    variant "reram" ~write_latency:10e-6 ~write_energy:100e-12;
    (* MRAM: faster than ReRAM but still costly writes. *)
    variant "mram" ~write_latency:2e-6 ~write_energy:30e-12;
  ]

let () =
  let model = Compass_nn.Models.squeezenet () in
  let batch = 16 in
  let table =
    Compass_util.Table.create
      ~aligns:Compass_util.Table.[ Left; Right; Right; Right; Right; Right ]
      [ "technology"; "parts"; "throughput"; "write time"; "energy/inf"; "rewrites/inf" ]
  in
  List.iter
    (fun (name, chip) ->
      let plan =
        Compiler.compile ~objective:Fitness.Energy ~ga_params:Ga.quick_params ~model
          ~chip ~batch Compiler.Compass
      in
      let perf = plan.Compiler.perf in
      let write_s =
        List.fold_left (fun acc sp -> acc +. sp.Estimator.write_s) 0. perf.Estimator.spans
      in
      let programmed =
        List.fold_left
          (fun acc sp -> acc +. sp.Estimator.programmed_bytes)
          0. perf.Estimator.spans
      in
      (* Cell rewrites per inference — the endurance-relevant metric for
         ReRAM (paper Sec. V-B). *)
      let rewrites_per_inf = programmed /. float_of_int batch in
      Compass_util.Table.add_row table
        [
          name;
          string_of_int (Partition.partition_count plan.Compiler.group);
          Printf.sprintf "%.1f/s" perf.Estimator.throughput_per_s;
          Compass_util.Units.time_to_string write_s;
          Compass_util.Units.energy_to_string perf.Estimator.energy_per_sample_j;
          Compass_util.Units.bytes_to_string rewrites_per_inf;
        ])
    technology_chips;
  Compass_util.Table.print table;
  print_newline ();
  print_endline
    "Costlier writes push the optimizer toward fewer, larger partitions\n\
     (fewer rewrites), trading pipeline balance for write amortization —\n\
     exactly the adaptation Sec. V-B describes for eNVM targets."
