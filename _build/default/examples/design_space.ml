(* Design-space exploration: which chip/batch configuration serves a
   ResNet18 deployment best?  The paper evaluates three fixed chips; a fast
   compiler also answers the inverse question — sweep candidate chips and
   batch sizes, compile each with COMPASS, and read the Pareto frontier.

   Run with:  dune exec examples/design_space.exe *)

open Compass_core
open Compass_arch

let () =
  let model = Compass_nn.Models.resnet18 () in
  (* The paper's presets plus two hypothetical in-between chips. *)
  let chips =
    [
      Config.chip_s;
      Config.custom ~label:"S+" ~cores:16 ~macros_per_core:12 ();
      Config.chip_m;
      Config.custom ~label:"M+" ~cores:16 ~macros_per_core:24 ();
      Config.chip_l;
    ]
  in
  let batches = [ 4; 16 ] in
  Printf.printf "sweeping %d configurations (COMPASS, quick GA)...\n\n"
    (List.length chips * List.length batches);
  let points =
    Explore.sweep ~ga_params:Ga.quick_params ~model ~chips ~batches ()
  in
  Compass_util.Table.print (Explore.points_table points);

  print_newline ();
  print_endline "Pareto frontier (max throughput, min energy/inference):";
  let frontier = Explore.pareto points in
  Compass_util.Table.print (Explore.points_table frontier);

  print_newline ();
  let target = 2000. in
  (match Explore.cheapest_meeting ~throughput_per_s:target points with
  | Some p ->
    Printf.printf
      "smallest chip sustaining %.0f inf/s: %s (%.3f MB on-chip) at batch %d\n" target
      p.Explore.chip.Config.label p.Explore.capacity_mb p.Explore.batch
  | None -> Printf.printf "no configuration reaches %.0f inf/s\n" target);
  print_newline ();
  print_endline
    "Larger chips trade energy (higher static power) for throughput (more\n\
     replication headroom and fewer weight-replacement rounds); the frontier\n\
     makes the capacity/batch sweet spots explicit."
