(* Batch size tuning (paper Sec. II-B and Fig. 8): weights of each partition
   are written once per batch, so larger batches amortize the replacement
   cost — but every sample then waits for the whole batch, growing
   end-to-end latency.  This example sweeps the batch size for ResNet18 on
   chip S and prints the throughput / latency / energy / EDP trade-off.

   Run with:  dune exec examples/batch_tuning.exe *)

open Compass_core

let () =
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.chip_s in
  let units = Unit_gen.generate model chip in
  let validity = Validity.build units in
  let ctx = Dataflow.context units in
  let table =
    Compass_util.Table.create
      ~aligns:Compass_util.Table.[ Right; Right; Right; Right; Right; Right ]
      [ "batch"; "parts"; "throughput"; "latency"; "energy/inf"; "EDP(J.s)" ]
  in
  let best_edp = ref (1, infinity) in
  List.iter
    (fun batch ->
      let result = Ga.optimize ~params:Ga.quick_params ctx validity ~batch in
      let perf = result.Ga.best.Ga.perf in
      if perf.Estimator.edp_j_s < snd !best_edp then
        best_edp := (batch, perf.Estimator.edp_j_s);
      Compass_util.Table.add_row table
        [
          string_of_int batch;
          string_of_int (Partition.partition_count result.Ga.best.Ga.group);
          Printf.sprintf "%.1f/s" perf.Estimator.throughput_per_s;
          Compass_util.Units.time_to_string perf.Estimator.batch_latency_s;
          Compass_util.Units.energy_to_string perf.Estimator.energy_per_sample_j;
          Printf.sprintf "%.3g" perf.Estimator.edp_j_s;
        ])
    [ 1; 2; 4; 8; 16; 32; 64 ];
  Compass_util.Table.print table;
  Printf.printf
    "\nbest EDP at batch %d — larger batches amortize weight writes, but\n\
     end-to-end latency keeps growing, so the sweet spot stays small (Sec. II-B).\n"
    (fst !best_edp)
