(** Model size accounting (paper Table II). *)

type t = {
  model : string;
  conv_params : int;
  linear_params : int;
  conv_mb : float;  (** Conv weight storage in MiB at the given precision. *)
  linear_mb : float;
  total_mb : float;
  weighted_layers : int;
  total_layers : int;
}

val of_graph : ?weight_bits:int -> Graph.t -> t
(** [of_graph g] computes the size summary; [weight_bits] defaults to 4,
    matching the paper's 4-bit evaluation precision. *)

val table2 : ?weight_bits:int -> Graph.t list -> Compass_util.Table.t
(** Render the summaries as a Table II lookalike (Linear/Conv/Total MB). *)

val per_layer_table : Graph.t -> Compass_util.Table.t
(** One row per layer: id, name, kind, output shape, params, per-sample
    MVM count. *)
