lib/nn/tensor.ml: Array Format Layer List Shape
