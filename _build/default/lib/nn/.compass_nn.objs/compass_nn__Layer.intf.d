lib/nn/layer.mli: Format Shape
