lib/nn/tensor.mli: Format Layer Shape
