lib/nn/summary.ml: Compass_util Graph Layer List Printf Shape Table
