lib/nn/shape.ml: Format
