lib/nn/shape.mli: Format
