lib/nn/graph.mli: Format Layer Shape
