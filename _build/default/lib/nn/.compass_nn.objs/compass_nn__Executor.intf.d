lib/nn/executor.mli: Graph Hashtbl Tensor
