lib/nn/layer.ml: Format List Option Printf Shape
