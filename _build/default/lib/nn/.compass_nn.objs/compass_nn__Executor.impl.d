lib/nn/executor.ml: Array Compass_util Graph Hashtbl Layer List Printf Shape Tensor
