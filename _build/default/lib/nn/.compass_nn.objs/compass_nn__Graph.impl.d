lib/nn/graph.ml: Array Buffer Format Layer List Printf Queue Shape
