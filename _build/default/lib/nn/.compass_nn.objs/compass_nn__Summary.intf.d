lib/nn/summary.mli: Compass_util Graph
