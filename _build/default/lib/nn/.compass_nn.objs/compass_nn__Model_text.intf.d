lib/nn/model_text.mli: Graph
