lib/nn/model_text.ml: Graph Hashtbl Layer List Option Printf Shape String
