lib/nn/models.mli: Graph
