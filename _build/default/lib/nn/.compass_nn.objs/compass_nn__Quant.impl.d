lib/nn/quant.ml: Array Float Hashtbl
