lib/nn/models.ml: Graph Layer List Printf Shape String
