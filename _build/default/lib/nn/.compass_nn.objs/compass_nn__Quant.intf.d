lib/nn/quant.mli: Executor
