type weights = (Graph.node, float array) Hashtbl.t

let random_weights ?(seed = 7) ?(scale = 0.1) g =
  let rng = Compass_util.Rng.create seed in
  let weights = Hashtbl.create 32 in
  List.iter
    (fun node ->
      let n = Layer.weight_params (Graph.layer g node).Layer.op in
      let data =
        Array.init n (fun _ -> Compass_util.Rng.float rng (2. *. scale) -. scale)
      in
      Hashtbl.add weights node data)
    (Graph.weighted_nodes g);
  weights

let random_input ?(seed = 11) g =
  match Graph.entry_nodes g with
  | [ input ] ->
    let rng = Compass_util.Rng.create seed in
    Tensor.create (Graph.shape_of g input) (fun _ -> Compass_util.Rng.float rng 1.)
  | _ -> invalid_arg "Executor.random_input: expected exactly one input"

let weights_of weights node =
  match Hashtbl.find_opt weights node with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Executor: missing weights for node %d" node)

let apply_node g weights node inputs =
  let one () =
    match inputs with
    | [ t ] -> t
    | _ -> invalid_arg "Executor.apply_node: arity"
  in
  match (Graph.layer g node).Layer.op with
  | Layer.Input _ -> invalid_arg "Executor.apply_node: Input has no computation"
  | Layer.Conv conv -> Tensor.conv2d conv ~weights:(weights_of weights node) (one ())
  | Layer.Linear { in_features; out_features } ->
    Tensor.linear ~in_features ~out_features ~weights:(weights_of weights node) (one ())
  | Layer.Pool { kind = Layer.Max; kernel; stride; padding } ->
    Tensor.max_pool ~kernel ~stride ~padding (one ())
  | Layer.Pool { kind = Layer.Avg; kernel; stride; padding } ->
    Tensor.avg_pool ~kernel ~stride ~padding (one ())
  | Layer.Global_avg_pool -> Tensor.global_avg_pool (one ())
  | Layer.Relu -> Tensor.relu (one ())
  | Layer.Batch_norm | Layer.Dropout -> one ()
  | Layer.Add -> (
    match inputs with
    | [ a; b ] -> Tensor.add a b
    | _ -> invalid_arg "Executor.apply_node: Add arity")
  | Layer.Concat -> Tensor.concat inputs
  | Layer.Flatten -> Tensor.flatten (one ())

let run g weights input =
  let outputs : (Graph.node, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun node ->
      let result =
        match (Graph.layer g node).Layer.op with
        | Layer.Input shape ->
          if not (Shape.equal shape (Tensor.shape input)) then
            invalid_arg "Executor.run: input shape mismatch";
          input
        | _ ->
          let inputs = List.map (Hashtbl.find outputs) (Graph.preds g node) in
          apply_node g weights node inputs
      in
      Hashtbl.add outputs node result)
    (Graph.topo_order g);
  fun node ->
    match Hashtbl.find_opt outputs node with
    | Some t -> t
    | None -> invalid_arg "Executor.run: unknown node"

let output g weights input =
  match Graph.exit_nodes g with
  | [ exit ] -> run g weights input exit
  | _ -> invalid_arg "Executor.output: expected exactly one exit"
