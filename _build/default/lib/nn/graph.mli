(** Model graphs: a directed acyclic graph of layers.

    Nodes are created through [add], which forces producers to exist before
    consumers, so construction order is always a valid topological order;
    [validate] re-checks the invariants independently for graphs assembled
    by tests or generators. *)

type t

type node = int
(** Stable node identifier, dense from 0. *)

val create : ?name:string -> unit -> t
(** [create ~name ()] is an empty graph.  [name] labels reports. *)

val name : t -> string

val add : t -> ?inputs:node list -> string -> Layer.op -> node
(** [add t ~inputs name op] appends a layer consuming the given ordered
    producers and returns its node id.  Raises [Invalid_argument] if an
    input id does not exist yet or if the inferred shapes are inconsistent
    with [op]. *)

val layer : t -> node -> Layer.t
(** Raises [Invalid_argument] on an unknown id. *)

val preds : t -> node -> node list
(** Ordered producers of a node. *)

val succs : t -> node -> node list
(** Consumers of a node, in creation order. *)

val node_count : t -> int

val nodes : t -> node list
(** All nodes in creation (= topological) order. *)

val topo_order : t -> node list
(** A topological order recomputed by Kahn's algorithm; equals [nodes] for
    graphs built through [add] but also works on adversarial inputs.
    Raises [Invalid_argument] if the graph contains a cycle (only possible
    through misuse of internal state in tests). *)

val entry_nodes : t -> node list
(** Nodes without predecessors (the [Input] layers). *)

val exit_nodes : t -> node list
(** Nodes without successors (the model outputs). *)

val shape_of : t -> node -> Shape.t
(** Inferred output shape of a node (cached). *)

val input_shapes_of : t -> node -> Shape.t list
(** Shapes of a node's ordered inputs. *)

val weighted_nodes : t -> node list
(** Conv/Linear nodes in topological order. *)

val total_weight_params : t -> int
(** Sum of [Layer.weight_params] over the graph. *)

val weight_bytes : weight_bits:int -> t -> float
(** Total weight storage at the given precision. *)

val mvms_of : t -> node -> int
(** Per-sample MVM count of a node (0 for unweighted nodes). *)

val vector_ops_of : t -> node -> int
(** Per-sample VFU element-operation count of a node. *)

val validate : t -> (unit, string) result
(** Structural checks: edge endpoints exist, no cycle, every non-input node
    has at least one predecessor, shapes infer successfully. *)

val pp_summary : Format.formatter -> t -> unit
(** One line per layer: name, kind, output shape, parameters. *)

val to_dot : t -> string
(** Graphviz rendering: one box per layer (label = name, kind, output
    shape), weighted layers shaded; edges follow the dataflow. *)
