(** Activation tensor shapes.

    Batch dimension is implicit (the compiler reasons per sample); a shape is
    either a spatial feature map or a flat feature vector. *)

type t =
  | Feature_map of {
      channels : int;
      height : int;
      width : int;
    }
  | Vector of { features : int }

val feature_map : channels:int -> height:int -> width:int -> t
(** Constructor with positivity checks. *)

val vector : int -> t
(** Constructor with positivity check. *)

val elements : t -> int
(** Number of scalar activations in one sample of this shape. *)

val bytes : activation_bits:int -> t -> float
(** Storage footprint of one sample at the given activation precision. *)

val channels : t -> int
(** Channel count; a vector has [features] channels of spatial size 1. *)

val spatial : t -> int * int
(** [(height, width)]; [(1, 1)] for vectors. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** e.g. ["64x56x56"] or ["4096"]. *)

val to_string : t -> string
