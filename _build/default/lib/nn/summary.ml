type t = {
  model : string;
  conv_params : int;
  linear_params : int;
  conv_mb : float;
  linear_mb : float;
  total_mb : float;
  weighted_layers : int;
  total_layers : int;
}

let of_graph ?(weight_bits = 4) g =
  let classify (conv, lin) id =
    let params = Layer.weight_params (Graph.layer g id).Layer.op in
    match (Graph.layer g id).Layer.op with
    | Layer.Conv _ -> (conv + params, lin)
    | Layer.Linear _ -> (conv, lin + params)
    | _ -> (conv, lin)
  in
  let conv_params, linear_params = List.fold_left classify (0, 0) (Graph.nodes g) in
  let mb params =
    float_of_int params *. float_of_int weight_bits /. 8. /. Compass_util.Units.mib
  in
  {
    model = Graph.name g;
    conv_params;
    linear_params;
    conv_mb = mb conv_params;
    linear_mb = mb linear_params;
    total_mb = mb (conv_params + linear_params);
    weighted_layers = List.length (Graph.weighted_nodes g);
    total_layers = Graph.node_count g;
  }

let table2 ?(weight_bits = 4) graphs =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "Network"; "Linear(MB)"; "Conv(MB)"; "Total(MB)"; "Weighted layers" ]
  in
  let row g =
    let s = of_graph ~weight_bits g in
    Table.add_row table
      [
        s.model;
        Printf.sprintf "%.3f" s.linear_mb;
        Printf.sprintf "%.3f" s.conv_mb;
        Printf.sprintf "%.3f" s.total_mb;
        string_of_int s.weighted_layers;
      ]
  in
  List.iter row graphs;
  table

let per_layer_table g =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Right; Table.Left; Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "id"; "name"; "kind"; "output"; "params"; "mvms/sample" ]
  in
  let row id =
    let l = Graph.layer g id in
    Table.add_row table
      [
        string_of_int id;
        l.Layer.name;
        Layer.op_kind l.Layer.op;
        Shape.to_string (Graph.shape_of g id);
        string_of_int (Layer.weight_params l.Layer.op);
        string_of_int (Graph.mvms_of g id);
      ]
  in
  List.iter row (Graph.nodes g);
  table
