(** Model zoo.

    Exact reconstructions of the three evaluation networks of the paper
    (Table II) plus small models used by tests and examples.  All builders
    are deterministic and validate their graph before returning. *)

val vgg16 : unit -> Graph.t
(** VGG16 (Simonyan & Zisserman), 13 conv + 3 linear layers, 224x224x3
    input, 1000 classes. *)

val resnet18 : unit -> Graph.t
(** ResNet18 (He et al.) with basic blocks and 1x1 downsample shortcuts;
    residual [Add] nodes give partitions multiple entry/exit points. *)

val squeezenet : unit -> Graph.t
(** SqueezeNet v1.1 (Iandola et al.): fire modules with [Concat] nodes. *)

val lenet5 : unit -> Graph.t
(** LeNet-5 on 28x28x1 input; small enough to fit on-chip everywhere, used
    by tests and the quickstart example. *)

val tiny_mlp : unit -> Graph.t
(** Three linear layers on a vector input; the smallest weighted model. *)

val tiny_resnet : unit -> Graph.t
(** A 6-conv residual network on 32x32x3 input; exercises skip-edge
    handling at test scale. *)

val alexnet : unit -> Graph.t
(** AlexNet (Krizhevsky et al.): large 11x11 stem and ~28 MB of linear
    weights — another network far beyond the chips' capacity. *)

val vgg11 : unit -> Graph.t
(** The shallow VGG configuration (A). *)

val resnet34 : unit -> Graph.t
(** ResNet34: the basic-block ResNet at [3,4,6,3] depth. *)

val mobilenet_v1 : unit -> Graph.t
(** MobileNetV1 (width 1.0): 13 depthwise-separable blocks — exercises
    grouped convolutions, the natural edge workload for PIM chips. *)

val by_name : string -> Graph.t
(** Lookup by lowercase name ("vgg16", "resnet18", "squeezenet", "lenet5",
    "tiny_mlp", "tiny_resnet", "alexnet", "vgg11", "resnet34",
    "mobilenet_v1").  Raises [Not_found] otherwise. *)

val evaluation_models : unit -> Graph.t list
(** The three models of the paper's evaluation, in Table II order
    (VGG16, ResNet18, SqueezeNet). *)

val all_names : string list
(** Every name accepted by [by_name]. *)
