(** Reference (functional) execution of model graphs.

    Runs a graph on actual tensors with the operators in [Tensor] — the
    oracle against which compiled, partitioned execution is validated
    ([Compass_core.Partition_exec]).  Batch normalization and dropout are
    inference-mode identities (folded scales are part of the conv weights
    in deployed PIM networks). *)

type weights = (Graph.node, float array) Hashtbl.t
(** One weight array per Conv/Linear node, in [Tensor]'s layouts. *)

val random_weights : ?seed:int -> ?scale:float -> Graph.t -> weights
(** Deterministic pseudo-random weights in [[-scale, scale]] (default
    scale 0.1) for every weighted node. *)

val random_input : ?seed:int -> Graph.t -> Tensor.t
(** A deterministic random tensor matching the graph's [Input] shape.
    Raises [Invalid_argument] on graphs without exactly one input. *)

val run : Graph.t -> weights -> Tensor.t -> (Graph.node -> Tensor.t)
(** [run g weights input] executes the whole graph and returns a lookup of
    every node's output tensor.  Raises [Invalid_argument] on missing
    weights or shape violations (the latter cannot happen for validated
    graphs). *)

val output : Graph.t -> weights -> Tensor.t -> Tensor.t
(** The unique exit node's tensor.  Raises [Invalid_argument] when the
    graph has several exits. *)

val apply_node : Graph.t -> weights -> Graph.node -> Tensor.t list -> Tensor.t
(** Execute a single node given its ordered input tensors — the primitive
    shared with the partitioned executor. *)
