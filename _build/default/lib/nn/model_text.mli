(** Textual model description format.

    The paper's toolchain consumes ONNX graphs; this module provides the
    equivalent front-end for this reproduction: a line-oriented format in
    which users describe networks without writing OCaml.  Channel and
    feature counts of inputs are inferred from the producers, so only
    output dimensions are spelled out:

    {v
    # LeNet-5
    model lenet5
    input in 1x28x28
    conv conv1 from in out=6 kernel=5 pad=2
    relu r1 from conv1
    avgpool p1 from r1 kernel=2 stride=2
    conv conv2 from p1 out=16 kernel=5 pad=0
    relu r2 from conv2
    avgpool p2 from r2 kernel=2 stride=2
    flatten f from p2
    linear fc1 from f out=120
    relu r3 from fc1
    linear fc2 from r3 out=84
    relu r4 from fc2
    linear fc3 from r4 out=10
    v}

    Operators: [input] (shape [CxHxW] or a single integer for vectors),
    [conv] (attributes [out], [kernel], optional [stride], [pad],
    [groups]), [depthwise] ([kernel], optional [stride], [pad]),
    [linear] ([out]), [maxpool]/[avgpool] ([kernel], [stride], optional
    [pad]), [relu], [bn], [dropout], [flatten], [gap], [add] (two
    producers), [concat] (two or more producers).  Blank lines and [#]
    comments are ignored. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse : string -> Graph.t
(** Parse a full description.  Raises [Parse_error] on malformed input and
    propagates shape-inference failures as [Parse_error] too. *)

val parse_file : string -> Graph.t
(** [parse_file path] reads and parses a file.  Raises [Sys_error] on IO
    failure. *)

val to_string : Graph.t -> string
(** Render a graph back to the textual format; [parse (to_string g)] is a
    graph with identical structure and shapes. *)
