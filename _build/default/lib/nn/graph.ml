type node = int

type t = {
  graph_name : string;
  mutable layers : Layer.t array; (* grows; index = node id *)
  mutable count : int;
  mutable pred_edges : node list array; (* ordered producers *)
  mutable succ_edges : node list array; (* reverse creation order, reversed on read *)
  mutable shape_cache : Shape.t option array;
}

let initial_capacity = 16

let create ?(name = "model") () =
  {
    graph_name = name;
    layers = [||];
    count = 0;
    pred_edges = [||];
    succ_edges = [||];
    shape_cache = [||];
  }

let name t = t.graph_name

let grow t =
  let cap = Array.length t.layers in
  if t.count >= cap then begin
    let ncap = max initial_capacity (2 * cap) in
    let dummy = { Layer.id = -1; name = ""; op = Layer.Relu } in
    let resize default arr =
      let fresh = Array.make ncap default in
      Array.blit arr 0 fresh 0 cap;
      fresh
    in
    t.layers <- resize dummy t.layers;
    t.pred_edges <- resize [] t.pred_edges;
    t.succ_edges <- resize [] t.succ_edges;
    t.shape_cache <- resize None t.shape_cache
  end

let check_node t id =
  if id < 0 || id >= t.count then
    invalid_arg (Printf.sprintf "Graph: unknown node %d (count %d)" id t.count)

let layer t id =
  check_node t id;
  t.layers.(id)

let preds t id =
  check_node t id;
  t.pred_edges.(id)

let succs t id =
  check_node t id;
  List.rev t.succ_edges.(id)

let node_count t = t.count

let nodes t = List.init t.count (fun i -> i)

let rec shape_of t id =
  check_node t id;
  match t.shape_cache.(id) with
  | Some s -> s
  | None ->
    let inputs = List.map (shape_of t) t.pred_edges.(id) in
    let s = Layer.output_shape t.layers.(id).Layer.op inputs in
    t.shape_cache.(id) <- Some s;
    s

let input_shapes_of t id = List.map (shape_of t) (preds t id)

let add t ?(inputs = []) layer_name op =
  List.iter (check_node t) inputs;
  grow t;
  let id = t.count in
  t.layers.(id) <- { Layer.id; name = layer_name; op };
  t.pred_edges.(id) <- inputs;
  t.count <- id + 1;
  List.iter (fun p -> t.succ_edges.(p) <- id :: t.succ_edges.(p)) inputs;
  (* Force shape inference now so inconsistent graphs fail at build site. *)
  (try ignore (shape_of t id)
   with e ->
     (* Roll back the partial node before re-raising. *)
     t.count <- id;
     List.iter
       (fun p -> t.succ_edges.(p) <- List.filter (fun s -> s <> id) t.succ_edges.(p))
       inputs;
     raise e);
  id

let entry_nodes t = List.filter (fun id -> preds t id = []) (nodes t)
let exit_nodes t = List.filter (fun id -> succs t id = []) (nodes t)

let topo_order t =
  let indegree = Array.make t.count 0 in
  List.iter (fun id -> indegree.(id) <- List.length (preds t id)) (nodes t);
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id queue) indegree;
  let order = ref [] in
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr visited;
    let relax s =
      indegree.(s) <- indegree.(s) - 1;
      if indegree.(s) = 0 then Queue.add s queue
    in
    List.iter relax (succs t id)
  done;
  if !visited <> t.count then invalid_arg "Graph.topo_order: cycle detected";
  List.rev !order

let weighted_nodes t =
  List.filter (fun id -> Layer.is_weighted (layer t id).Layer.op) (topo_order t)

let total_weight_params t =
  List.fold_left (fun acc id -> acc + Layer.weight_params (layer t id).Layer.op) 0 (nodes t)

let weight_bytes ~weight_bits t =
  if weight_bits <= 0 then invalid_arg "Graph.weight_bytes: non-positive precision";
  float_of_int (total_weight_params t) *. float_of_int weight_bits /. 8.

let mvms_of t id = Layer.mvms_per_sample (layer t id).Layer.op (input_shapes_of t id)

let vector_ops_of t id =
  Layer.vector_ops_per_sample (layer t id).Layer.op (input_shapes_of t id)

let validate t =
  let check_edges id =
    List.for_all (fun p -> p >= 0 && p < t.count) (preds t id)
  in
  if not (List.for_all check_edges (nodes t)) then Error "dangling edge"
  else
    let needs_inputs id =
      match (layer t id).Layer.op with Layer.Input _ -> false | _ -> true
    in
    let orphan =
      List.exists (fun id -> needs_inputs id && preds t id = []) (nodes t)
    in
    if orphan then Error "non-input node without predecessors"
    else
      match topo_order t with
      | exception Invalid_argument msg -> Error msg
      | _ -> (
        match List.iter (fun id -> ignore (shape_of t id)) (nodes t) with
        | () -> Ok ()
        | exception Invalid_argument msg -> Error msg)

let to_dot t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" t.graph_name);
  List.iter
    (fun id ->
      let l = layer t id in
      let shade = if Layer.is_weighted l.Layer.op then ",style=filled,fillcolor=lightblue" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [shape=box,label=\"%s\\n%s %s\"%s];\n" id l.Layer.name
           (Layer.op_kind l.Layer.op)
           (Shape.to_string (shape_of t id))
           shade))
    (nodes t);
  List.iter
    (fun id ->
      List.iter (fun p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p id)) (preds t id))
    (nodes t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_summary ppf t =
  Format.fprintf ppf "%s (%d layers, %d weights)@." t.graph_name t.count
    (total_weight_params t);
  let line id =
    let l = layer t id in
    Format.fprintf ppf "  %3d %-12s %-8s out=%-12s params=%d@." id l.Layer.name
      (Layer.op_kind l.Layer.op)
      (Shape.to_string (shape_of t id))
      (Layer.weight_params l.Layer.op)
  in
  List.iter line (nodes t)
