let checked g =
  match Graph.validate g with
  | Ok () -> g
  | Error msg -> invalid_arg (Printf.sprintf "Models: %s is invalid: %s" (Graph.name g) msg)

let image_input g ~channels ~height ~width =
  Graph.add g "input" (Layer.Input (Shape.feature_map ~channels ~height ~width))

(* Conv + ReLU, the ubiquitous VGG/SqueezeNet building block. *)
let conv_relu g ~inputs name ?stride ?padding ~in_channels ~out_channels k =
  let c =
    Graph.add g ~inputs name (Layer.conv ?stride ?padding ~in_channels ~out_channels k)
  in
  Graph.add g ~inputs:[ c ] (name ^ "_relu") Layer.Relu

let vgg16 () =
  let g = Graph.create ~name:"vgg16" () in
  let x = ref (image_input g ~channels:3 ~height:224 ~width:224) in
  let channels = ref 3 in
  let block stage convs =
    List.iteri
      (fun i out_channels ->
        let name = Printf.sprintf "conv%d_%d" stage (i + 1) in
        x := conv_relu g ~inputs:[ !x ] name ~in_channels:!channels ~out_channels 3;
        channels := out_channels)
      convs;
    x :=
      Graph.add g ~inputs:[ !x ]
        (Printf.sprintf "pool%d" stage)
        (Layer.max_pool ~kernel:2 ~stride:2 ())
  in
  block 1 [ 64; 64 ];
  block 2 [ 128; 128 ];
  block 3 [ 256; 256; 256 ];
  block 4 [ 512; 512; 512 ];
  block 5 [ 512; 512; 512 ];
  let flat = Graph.add g ~inputs:[ !x ] "flatten" Layer.Flatten in
  let fc name inputs in_features out_features =
    Graph.add g ~inputs name (Layer.linear ~in_features ~out_features)
  in
  let fc6 = fc "fc6" [ flat ] (512 * 7 * 7) 4096 in
  let r6 = Graph.add g ~inputs:[ fc6 ] "fc6_relu" Layer.Relu in
  let d6 = Graph.add g ~inputs:[ r6 ] "fc6_drop" Layer.Dropout in
  let fc7 = fc "fc7" [ d6 ] 4096 4096 in
  let r7 = Graph.add g ~inputs:[ fc7 ] "fc7_relu" Layer.Relu in
  let d7 = Graph.add g ~inputs:[ r7 ] "fc7_drop" Layer.Dropout in
  let _fc8 = fc "fc8" [ d7 ] 4096 1000 in
  checked g

let resnet18 () =
  let g = Graph.create ~name:"resnet18" () in
  let input = image_input g ~channels:3 ~height:224 ~width:224 in
  let conv1 =
    Graph.add g ~inputs:[ input ] "conv1"
      (Layer.conv ~stride:2 ~padding:3 ~in_channels:3 ~out_channels:64 7)
  in
  let bn1 = Graph.add g ~inputs:[ conv1 ] "bn1" Layer.Batch_norm in
  let relu1 = Graph.add g ~inputs:[ bn1 ] "relu1" Layer.Relu in
  let pool1 =
    Graph.add g ~inputs:[ relu1 ] "maxpool"
      (Layer.max_pool ~padding:1 ~kernel:3 ~stride:2 ())
  in
  (* A basic block: two 3x3 convs with BN, an identity or 1x1-projection
     shortcut, joined by Add then ReLU. *)
  let basic_block name ~inputs ~in_channels ~out_channels ~stride =
    let entry = inputs in
    let c1 =
      Graph.add g ~inputs:[ entry ] (name ^ "_conv1")
        (Layer.conv ~stride ~padding:1 ~in_channels ~out_channels 3)
    in
    let b1 = Graph.add g ~inputs:[ c1 ] (name ^ "_bn1") Layer.Batch_norm in
    let r1 = Graph.add g ~inputs:[ b1 ] (name ^ "_relu1") Layer.Relu in
    let c2 =
      Graph.add g ~inputs:[ r1 ] (name ^ "_conv2")
        (Layer.conv ~stride:1 ~padding:1 ~in_channels:out_channels ~out_channels 3)
    in
    let b2 = Graph.add g ~inputs:[ c2 ] (name ^ "_bn2") Layer.Batch_norm in
    let shortcut =
      if stride = 1 && in_channels = out_channels then entry
      else
        let proj =
          Graph.add g ~inputs:[ entry ] (name ^ "_down")
            (Layer.conv ~stride ~padding:0 ~in_channels ~out_channels 1)
        in
        Graph.add g ~inputs:[ proj ] (name ^ "_down_bn") Layer.Batch_norm
    in
    let sum = Graph.add g ~inputs:[ b2; shortcut ] (name ^ "_add") Layer.Add in
    Graph.add g ~inputs:[ sum ] (name ^ "_relu2") Layer.Relu
  in
  let stage idx ~inputs ~in_channels ~out_channels ~stride =
    let b1 =
      basic_block (Printf.sprintf "layer%d_0" idx) ~inputs ~in_channels ~out_channels
        ~stride
    in
    basic_block
      (Printf.sprintf "layer%d_1" idx)
      ~inputs:b1 ~in_channels:out_channels ~out_channels ~stride:1
  in
  let s1 = stage 1 ~inputs:pool1 ~in_channels:64 ~out_channels:64 ~stride:1 in
  let s2 = stage 2 ~inputs:s1 ~in_channels:64 ~out_channels:128 ~stride:2 in
  let s3 = stage 3 ~inputs:s2 ~in_channels:128 ~out_channels:256 ~stride:2 in
  let s4 = stage 4 ~inputs:s3 ~in_channels:256 ~out_channels:512 ~stride:2 in
  let gap = Graph.add g ~inputs:[ s4 ] "avgpool" Layer.Global_avg_pool in
  let _fc =
    Graph.add g ~inputs:[ gap ] "fc" (Layer.linear ~in_features:512 ~out_features:1000)
  in
  checked g

let squeezenet () =
  let g = Graph.create ~name:"squeezenet" () in
  let input = image_input g ~channels:3 ~height:224 ~width:224 in
  let conv1 =
    conv_relu g ~inputs:[ input ] "conv1" ~stride:2 ~padding:0 ~in_channels:3
      ~out_channels:64 3
  in
  let pool1 =
    Graph.add g ~inputs:[ conv1 ] "pool1" (Layer.max_pool ~kernel:3 ~stride:2 ())
  in
  let fire name ~inputs ~in_channels ~squeeze ~expand =
    let s =
      conv_relu g ~inputs:[ inputs ] (name ^ "_squeeze") ~padding:0 ~in_channels
        ~out_channels:squeeze 1
    in
    let e1 =
      conv_relu g ~inputs:[ s ] (name ^ "_expand1x1") ~padding:0 ~in_channels:squeeze
        ~out_channels:expand 1
    in
    let e3 =
      conv_relu g ~inputs:[ s ] (name ^ "_expand3x3") ~padding:1 ~in_channels:squeeze
        ~out_channels:expand 3
    in
    Graph.add g ~inputs:[ e1; e3 ] (name ^ "_concat") Layer.Concat
  in
  let f2 = fire "fire2" ~inputs:pool1 ~in_channels:64 ~squeeze:16 ~expand:64 in
  let f3 = fire "fire3" ~inputs:f2 ~in_channels:128 ~squeeze:16 ~expand:64 in
  let pool3 =
    Graph.add g ~inputs:[ f3 ] "pool3" (Layer.max_pool ~kernel:3 ~stride:2 ())
  in
  let f4 = fire "fire4" ~inputs:pool3 ~in_channels:128 ~squeeze:32 ~expand:128 in
  let f5 = fire "fire5" ~inputs:f4 ~in_channels:256 ~squeeze:32 ~expand:128 in
  let pool5 =
    Graph.add g ~inputs:[ f5 ] "pool5" (Layer.max_pool ~kernel:3 ~stride:2 ())
  in
  let f6 = fire "fire6" ~inputs:pool5 ~in_channels:256 ~squeeze:48 ~expand:192 in
  let f7 = fire "fire7" ~inputs:f6 ~in_channels:384 ~squeeze:48 ~expand:192 in
  let f8 = fire "fire8" ~inputs:f7 ~in_channels:384 ~squeeze:64 ~expand:256 in
  let f9 = fire "fire9" ~inputs:f8 ~in_channels:512 ~squeeze:64 ~expand:256 in
  let drop = Graph.add g ~inputs:[ f9 ] "drop" Layer.Dropout in
  let conv10 =
    conv_relu g ~inputs:[ drop ] "conv10" ~padding:0 ~in_channels:512 ~out_channels:1000
      1
  in
  let _gap = Graph.add g ~inputs:[ conv10 ] "gap" Layer.Global_avg_pool in
  checked g

let lenet5 () =
  let g = Graph.create ~name:"lenet5" () in
  let input = image_input g ~channels:1 ~height:28 ~width:28 in
  let c1 =
    conv_relu g ~inputs:[ input ] "conv1" ~padding:2 ~in_channels:1 ~out_channels:6 5
  in
  let p1 = Graph.add g ~inputs:[ c1 ] "pool1" (Layer.avg_pool ~kernel:2 ~stride:2 ()) in
  let c2 =
    conv_relu g ~inputs:[ p1 ] "conv2" ~padding:0 ~in_channels:6 ~out_channels:16 5
  in
  let p2 = Graph.add g ~inputs:[ c2 ] "pool2" (Layer.avg_pool ~kernel:2 ~stride:2 ()) in
  let flat = Graph.add g ~inputs:[ p2 ] "flatten" Layer.Flatten in
  let fc1 =
    Graph.add g ~inputs:[ flat ] "fc1" (Layer.linear ~in_features:400 ~out_features:120)
  in
  let r1 = Graph.add g ~inputs:[ fc1 ] "fc1_relu" Layer.Relu in
  let fc2 =
    Graph.add g ~inputs:[ r1 ] "fc2" (Layer.linear ~in_features:120 ~out_features:84)
  in
  let r2 = Graph.add g ~inputs:[ fc2 ] "fc2_relu" Layer.Relu in
  let _fc3 =
    Graph.add g ~inputs:[ r2 ] "fc3" (Layer.linear ~in_features:84 ~out_features:10)
  in
  checked g

let tiny_mlp () =
  let g = Graph.create ~name:"tiny_mlp" () in
  let input = Graph.add g "input" (Layer.Input (Shape.vector 256)) in
  let fc1 =
    Graph.add g ~inputs:[ input ] "fc1" (Layer.linear ~in_features:256 ~out_features:128)
  in
  let r1 = Graph.add g ~inputs:[ fc1 ] "fc1_relu" Layer.Relu in
  let fc2 =
    Graph.add g ~inputs:[ r1 ] "fc2" (Layer.linear ~in_features:128 ~out_features:64)
  in
  let r2 = Graph.add g ~inputs:[ fc2 ] "fc2_relu" Layer.Relu in
  let _fc3 =
    Graph.add g ~inputs:[ r2 ] "fc3" (Layer.linear ~in_features:64 ~out_features:10)
  in
  checked g

let tiny_resnet () =
  let g = Graph.create ~name:"tiny_resnet" () in
  let input = image_input g ~channels:3 ~height:32 ~width:32 in
  let stem =
    conv_relu g ~inputs:[ input ] "stem" ~padding:1 ~in_channels:3 ~out_channels:16 3
  in
  let block name ~inputs ~channels =
    let c1 =
      Graph.add g ~inputs:[ inputs ] (name ^ "_conv1")
        (Layer.conv ~padding:1 ~in_channels:channels ~out_channels:channels 3)
    in
    let r1 = Graph.add g ~inputs:[ c1 ] (name ^ "_relu1") Layer.Relu in
    let c2 =
      Graph.add g ~inputs:[ r1 ] (name ^ "_conv2")
        (Layer.conv ~padding:1 ~in_channels:channels ~out_channels:channels 3)
    in
    let sum = Graph.add g ~inputs:[ c2; inputs ] (name ^ "_add") Layer.Add in
    Graph.add g ~inputs:[ sum ] (name ^ "_relu2") Layer.Relu
  in
  let b1 = block "block1" ~inputs:stem ~channels:16 in
  let down =
    conv_relu g ~inputs:[ b1 ] "down" ~stride:2 ~padding:1 ~in_channels:16
      ~out_channels:32 3
  in
  let b2 = block "block2" ~inputs:down ~channels:32 in
  let gap = Graph.add g ~inputs:[ b2 ] "gap" Layer.Global_avg_pool in
  let _fc =
    Graph.add g ~inputs:[ gap ] "fc" (Layer.linear ~in_features:32 ~out_features:10)
  in
  checked g

let alexnet () =
  let g = Graph.create ~name:"alexnet" () in
  let input = image_input g ~channels:3 ~height:224 ~width:224 in
  let c1 =
    conv_relu g ~inputs:[ input ] "conv1" ~stride:4 ~padding:2 ~in_channels:3
      ~out_channels:96 11
  in
  let p1 = Graph.add g ~inputs:[ c1 ] "pool1" (Layer.max_pool ~kernel:3 ~stride:2 ()) in
  let c2 =
    conv_relu g ~inputs:[ p1 ] "conv2" ~padding:2 ~in_channels:96 ~out_channels:256 5
  in
  let p2 = Graph.add g ~inputs:[ c2 ] "pool2" (Layer.max_pool ~kernel:3 ~stride:2 ()) in
  let c3 =
    conv_relu g ~inputs:[ p2 ] "conv3" ~padding:1 ~in_channels:256 ~out_channels:384 3
  in
  let c4 =
    conv_relu g ~inputs:[ c3 ] "conv4" ~padding:1 ~in_channels:384 ~out_channels:384 3
  in
  let c5 =
    conv_relu g ~inputs:[ c4 ] "conv5" ~padding:1 ~in_channels:384 ~out_channels:256 3
  in
  let p5 = Graph.add g ~inputs:[ c5 ] "pool5" (Layer.max_pool ~kernel:3 ~stride:2 ()) in
  let flat = Graph.add g ~inputs:[ p5 ] "flatten" Layer.Flatten in
  let fc6 =
    Graph.add g ~inputs:[ flat ] "fc6"
      (Layer.linear ~in_features:(256 * 6 * 6) ~out_features:4096)
  in
  let r6 = Graph.add g ~inputs:[ fc6 ] "fc6_relu" Layer.Relu in
  let d6 = Graph.add g ~inputs:[ r6 ] "fc6_drop" Layer.Dropout in
  let fc7 =
    Graph.add g ~inputs:[ d6 ] "fc7" (Layer.linear ~in_features:4096 ~out_features:4096)
  in
  let r7 = Graph.add g ~inputs:[ fc7 ] "fc7_relu" Layer.Relu in
  let d7 = Graph.add g ~inputs:[ r7 ] "fc7_drop" Layer.Dropout in
  let _fc8 =
    Graph.add g ~inputs:[ d7 ] "fc8" (Layer.linear ~in_features:4096 ~out_features:1000)
  in
  checked g

let vgg_variant ~name blocks =
  let g = Graph.create ~name () in
  let x = ref (image_input g ~channels:3 ~height:224 ~width:224) in
  let channels = ref 3 in
  List.iteri
    (fun stage convs ->
      List.iteri
        (fun i out_channels ->
          let layer_name = Printf.sprintf "conv%d_%d" (stage + 1) (i + 1) in
          x := conv_relu g ~inputs:[ !x ] layer_name ~in_channels:!channels ~out_channels 3;
          channels := out_channels)
        convs;
      x :=
        Graph.add g ~inputs:[ !x ]
          (Printf.sprintf "pool%d" (stage + 1))
          (Layer.max_pool ~kernel:2 ~stride:2 ()))
    blocks;
  let flat = Graph.add g ~inputs:[ !x ] "flatten" Layer.Flatten in
  let fc6 =
    Graph.add g ~inputs:[ flat ] "fc6"
      (Layer.linear ~in_features:(512 * 7 * 7) ~out_features:4096)
  in
  let r6 = Graph.add g ~inputs:[ fc6 ] "fc6_relu" Layer.Relu in
  let fc7 =
    Graph.add g ~inputs:[ r6 ] "fc7" (Layer.linear ~in_features:4096 ~out_features:4096)
  in
  let r7 = Graph.add g ~inputs:[ fc7 ] "fc7_relu" Layer.Relu in
  let _fc8 =
    Graph.add g ~inputs:[ r7 ] "fc8" (Layer.linear ~in_features:4096 ~out_features:1000)
  in
  checked g

let vgg11 () = vgg_variant ~name:"vgg11" [ [ 64 ]; [ 128 ]; [ 256; 256 ]; [ 512; 512 ]; [ 512; 512 ] ]

let resnet_variant ~name stage_blocks =
  let g = Graph.create ~name () in
  let input = image_input g ~channels:3 ~height:224 ~width:224 in
  let conv1 =
    Graph.add g ~inputs:[ input ] "conv1"
      (Layer.conv ~stride:2 ~padding:3 ~in_channels:3 ~out_channels:64 7)
  in
  let bn1 = Graph.add g ~inputs:[ conv1 ] "bn1" Layer.Batch_norm in
  let relu1 = Graph.add g ~inputs:[ bn1 ] "relu1" Layer.Relu in
  let pool1 =
    Graph.add g ~inputs:[ relu1 ] "maxpool"
      (Layer.max_pool ~padding:1 ~kernel:3 ~stride:2 ())
  in
  let basic_block block_name ~inputs ~in_channels ~out_channels ~stride =
    let entry = inputs in
    let c1 =
      Graph.add g ~inputs:[ entry ] (block_name ^ "_conv1")
        (Layer.conv ~stride ~padding:1 ~in_channels ~out_channels 3)
    in
    let b1 = Graph.add g ~inputs:[ c1 ] (block_name ^ "_bn1") Layer.Batch_norm in
    let r1 = Graph.add g ~inputs:[ b1 ] (block_name ^ "_relu1") Layer.Relu in
    let c2 =
      Graph.add g ~inputs:[ r1 ] (block_name ^ "_conv2")
        (Layer.conv ~stride:1 ~padding:1 ~in_channels:out_channels ~out_channels 3)
    in
    let b2 = Graph.add g ~inputs:[ c2 ] (block_name ^ "_bn2") Layer.Batch_norm in
    let shortcut =
      if stride = 1 && in_channels = out_channels then entry
      else
        let proj =
          Graph.add g ~inputs:[ entry ] (block_name ^ "_down")
            (Layer.conv ~stride ~padding:0 ~in_channels ~out_channels 1)
        in
        Graph.add g ~inputs:[ proj ] (block_name ^ "_down_bn") Layer.Batch_norm
    in
    let sum = Graph.add g ~inputs:[ b2; shortcut ] (block_name ^ "_add") Layer.Add in
    Graph.add g ~inputs:[ sum ] (block_name ^ "_relu2") Layer.Relu
  in
  let x = ref pool1 in
  let channels = ref 64 in
  List.iteri
    (fun stage_idx (blocks, out_channels) ->
      for b = 0 to blocks - 1 do
        let stride = if stage_idx > 0 && b = 0 then 2 else 1 in
        x :=
          basic_block
            (Printf.sprintf "layer%d_%d" (stage_idx + 1) b)
            ~inputs:!x ~in_channels:!channels ~out_channels ~stride;
        channels := out_channels
      done)
    stage_blocks;
  let gap = Graph.add g ~inputs:[ !x ] "avgpool" Layer.Global_avg_pool in
  let _fc =
    Graph.add g ~inputs:[ gap ] "fc" (Layer.linear ~in_features:512 ~out_features:1000)
  in
  checked g

let resnet34 () =
  resnet_variant ~name:"resnet34" [ (3, 64); (4, 128); (6, 256); (3, 512) ]

(* MobileNetV1: depthwise-separable blocks (dw 3x3 + pw 1x1), width 1.0. *)
let mobilenet_v1 () =
  let g = Graph.create ~name:"mobilenet_v1" () in
  let input = image_input g ~channels:3 ~height:224 ~width:224 in
  let block_id = ref 0 in
  let separable ~inputs ~in_channels ~out_channels ~stride =
    incr block_id;
    let name suffix = Printf.sprintf "block%d_%s" !block_id suffix in
    let dw =
      Graph.add g ~inputs:[ inputs ] (name "dw")
        (Layer.depthwise ~stride ~padding:1 ~channels:in_channels 3)
    in
    let dw_bn = Graph.add g ~inputs:[ dw ] (name "dw_bn") Layer.Batch_norm in
    let dw_relu = Graph.add g ~inputs:[ dw_bn ] (name "dw_relu") Layer.Relu in
    let pw =
      Graph.add g ~inputs:[ dw_relu ] (name "pw")
        (Layer.conv ~padding:0 ~in_channels ~out_channels 1)
    in
    let pw_bn = Graph.add g ~inputs:[ pw ] (name "pw_bn") Layer.Batch_norm in
    Graph.add g ~inputs:[ pw_bn ] (name "pw_relu") Layer.Relu
  in
  let stem =
    Graph.add g ~inputs:[ input ] "conv1"
      (Layer.conv ~stride:2 ~padding:1 ~in_channels:3 ~out_channels:32 3)
  in
  let stem_bn = Graph.add g ~inputs:[ stem ] "conv1_bn" Layer.Batch_norm in
  let stem_relu = Graph.add g ~inputs:[ stem_bn ] "conv1_relu" Layer.Relu in
  let x = ref stem_relu in
  List.iter
    (fun (in_channels, out_channels, stride) ->
      x := separable ~inputs:!x ~in_channels ~out_channels ~stride)
    [
      (32, 64, 1); (64, 128, 2); (128, 128, 1); (128, 256, 2); (256, 256, 1);
      (256, 512, 2); (512, 512, 1); (512, 512, 1); (512, 512, 1); (512, 512, 1);
      (512, 512, 1); (512, 1024, 2); (1024, 1024, 1);
    ];
  let gap = Graph.add g ~inputs:[ !x ] "avgpool" Layer.Global_avg_pool in
  let _fc =
    Graph.add g ~inputs:[ gap ] "fc" (Layer.linear ~in_features:1024 ~out_features:1000)
  in
  checked g

let builders =
  [
    ("vgg16", vgg16);
    ("resnet18", resnet18);
    ("squeezenet", squeezenet);
    ("lenet5", lenet5);
    ("tiny_mlp", tiny_mlp);
    ("tiny_resnet", tiny_resnet);
    ("alexnet", alexnet);
    ("vgg11", vgg11);
    ("resnet34", resnet34);
    ("mobilenet_v1", mobilenet_v1);
  ]

let by_name name = (List.assoc (String.lowercase_ascii name) builders) ()

let evaluation_models () = [ vgg16 (); resnet18 (); squeezenet () ]

let all_names = List.map fst builders
