type t =
  | Feature_map of {
      channels : int;
      height : int;
      width : int;
    }
  | Vector of { features : int }

let feature_map ~channels ~height ~width =
  if channels <= 0 || height <= 0 || width <= 0 then
    invalid_arg "Shape.feature_map: non-positive dimension";
  Feature_map { channels; height; width }

let vector features =
  if features <= 0 then invalid_arg "Shape.vector: non-positive dimension";
  Vector { features }

let elements = function
  | Feature_map { channels; height; width } -> channels * height * width
  | Vector { features } -> features

let bytes ~activation_bits t =
  if activation_bits <= 0 then invalid_arg "Shape.bytes: non-positive precision";
  float_of_int (elements t) *. float_of_int activation_bits /. 8.

let channels = function
  | Feature_map { channels; _ } -> channels
  | Vector { features } -> features

let spatial = function
  | Feature_map { height; width; _ } -> (height, width)
  | Vector _ -> (1, 1)

let equal a b = a = b

let pp ppf = function
  | Feature_map { channels; height; width } ->
    Format.fprintf ppf "%dx%dx%d" channels height width
  | Vector { features } -> Format.fprintf ppf "%d" features

let to_string t = Format.asprintf "%a" pp t
