lib/isa/timeline.mli: Sim
