lib/isa/program.ml: Format Hashtbl Instr List Option
