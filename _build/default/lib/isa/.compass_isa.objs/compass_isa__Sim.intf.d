lib/isa/sim.mli: Compass_arch Compass_dram Program
