lib/isa/timeline.ml: Array Compass_util Hashtbl List Option Printf Sim String
