lib/isa/sim.ml: Compass_arch Compass_dram Config Crossbar Energy Hashtbl Instr Interconnect List Program Queue
