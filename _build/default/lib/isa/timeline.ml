let glyph = function
  | "weight_write" -> 'W'
  | "mvm" -> 'M'
  | "vfu" -> 'V'
  | "load" -> 'L'
  | "store" -> 'S'
  | "send" -> '>'
  | "recv" -> '<'
  | _ -> '.'

(* Rank when several activities land in one bucket: compute wins. *)
let rank = function
  | 'M' -> 6
  | 'W' -> 5
  | 'V' -> 4
  | 'L' | 'S' -> 3
  | '>' | '<' -> 2
  | _ -> 1

let render ?(width = 72) (sim : Sim.result) =
  if sim.Sim.makespan_s <= 0. then "(empty timeline)"
  else begin
    let cores =
      List.sort_uniq compare (List.map (fun e -> e.Sim.core) sim.Sim.events)
    in
    let rows = Hashtbl.create 16 in
    List.iter (fun c -> Hashtbl.add rows c (Array.make width ' ')) cores;
    let bucket t =
      max 0 (min (width - 1) (int_of_float (t /. sim.Sim.makespan_s *. float_of_int width)))
    in
    List.iter
      (fun e ->
        match Hashtbl.find_opt rows e.Sim.core with
        | None -> ()
        | Some row ->
          let g = glyph e.Sim.label in
          for b = bucket e.Sim.start_s to bucket e.Sim.finish_s do
            if rank g > rank row.(b) then row.(b) <- g
          done)
      sim.Sim.events;
    let line c =
      Printf.sprintf "core %2d |%s|" c (String.init width (Array.get (Hashtbl.find rows c)))
    in
    String.concat "\n"
      ((Printf.sprintf "timeline over %s (W=write M=mvm V=vfu L/S=io >/<=bus .=sync)"
          (Compass_util.Units.time_to_string sim.Sim.makespan_s))
      :: List.map line cores)
  end

let core_utilization (sim : Sim.result) =
  let busy = Hashtbl.create 16 in
  List.iter
    (fun e ->
      if e.Sim.label = "mvm" || e.Sim.label = "vfu" then
        Hashtbl.replace busy e.Sim.core
          ((e.Sim.finish_s -. e.Sim.start_s)
          +. Option.value ~default:0. (Hashtbl.find_opt busy e.Sim.core)))
    sim.Sim.events;
  List.map
    (fun (c, _) ->
      let b = Option.value ~default:0. (Hashtbl.find_opt busy c) in
      (c, if sim.Sim.makespan_s > 0. then b /. sim.Sim.makespan_s else 0.))
    (List.sort compare sim.Sim.core_finish_s)
