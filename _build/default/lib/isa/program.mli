(** Per-core instruction programs. *)

type t = {
  core_id : int;
  instrs : Instr.t list;
}

val make : core_id:int -> Instr.t list -> t
(** Raises [Invalid_argument] on a negative core id. *)

val length : t -> int

val mvm_total : t -> int
(** Total MVM products in the program. *)

val dram_bytes : t -> float
(** Total external-memory traffic of the program. *)

val instruction_mix : t list -> (string * int) list
(** Histogram of instruction kinds across programs, for reports. *)

val validate : cores:int -> t list -> (unit, string) result
(** Checks: core ids unique and within [0, cores); every [Send] has a
    matching [Recv] with the same channel, byte count and src/dst pair. *)

val pp : Format.formatter -> t -> unit
