(** ASCII Gantt rendering of a simulation's per-core activity.

    One row per core, time bucketed across the makespan; each bucket shows
    the activity that dominated it:

    ['W'] weight write, ['M'] matrix unit, ['V'] vector unit, ['L'] load,
    ['S'] store, ['>'] send, ['<'] recv (stall), ['.'] barrier/idle.

    The weight-replacement phases of Fig. 2 — later partitions' writes
    starting on cores that drained early — are directly visible. *)

val render : ?width:int -> Sim.result -> string
(** [render sim] draws the timeline ([width] buckets, default 72). *)

val core_utilization : Sim.result -> (int * float) list
(** Per core: fraction of the makespan spent on compute (mvm + vfu), in
    core-id order. *)
