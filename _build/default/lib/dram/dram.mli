(** Facade over the LPDDR3 model.

    [simulate] is the trace-accurate path (the DRAMsim3 substitute);
    [analytic_*] expose the closed-form streaming approximations used inside
    the GA fitness loop, where replaying a trace per candidate would be
    prohibitive.  Tests assert the two agree within a small factor on
    streaming workloads. *)

val simulate :
  ?timing:Timing.t ->
  ?energy:Controller.energy_model ->
  ?mapping:Controller.address_mapping ->
  Trace.record list ->
  Controller.stats
(** Replay a bulk trace through the bank-state controller. *)

val analytic_seconds : ?timing:Timing.t -> float -> float
(** Streaming transfer time: request overhead + bytes at ~90% of the peak
    data-bus bandwidth (row-miss gaps cost about a tenth on the streaming
    mapping). *)

val analytic_energy_j :
  ?timing:Timing.t -> ?energy:Controller.energy_model -> float -> float
(** Streaming energy: per-burst read energy plus amortized activates. *)

val analytic_energy_per_byte_j : ?timing:Timing.t -> ?energy:Controller.energy_model -> unit -> float

val pp_stats : Format.formatter -> Controller.stats -> unit
