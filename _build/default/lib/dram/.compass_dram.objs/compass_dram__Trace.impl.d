lib/dram/trace.ml: Format List String
