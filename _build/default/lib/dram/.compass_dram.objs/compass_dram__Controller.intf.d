lib/dram/controller.mli: Timing Trace
