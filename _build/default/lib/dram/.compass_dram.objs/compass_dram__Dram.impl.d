lib/dram/dram.ml: Compass_util Controller Format Timing Units
