lib/dram/timing.mli:
