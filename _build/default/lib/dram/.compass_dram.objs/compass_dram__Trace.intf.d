lib/dram/trace.mli: Format
