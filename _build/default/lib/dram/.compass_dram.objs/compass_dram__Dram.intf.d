lib/dram/dram.mli: Controller Format Timing Trace
