lib/dram/timing.ml:
