lib/dram/controller.ml: Array Bank List Timing Trace
