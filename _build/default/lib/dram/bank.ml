type t = {
  timing : Timing.t;
  mutable row : int option;
  mutable ready : int;  (* earliest cycle the next command may issue *)
  mutable activated_at : int;  (* cycle of the last ACT, for tRAS *)
}

type outcome = {
  issue_cycle : int;
  data_cycle : int;
  row_hit : bool;
  activated : bool;
  precharged : bool;
}

let create timing = { timing; row = None; ready = 0; activated_at = min_int / 2 }

let open_row t = t.row

let block_until t cycle = t.ready <- max t.ready cycle

let access t ~now ~row ~write =
  if row < 0 then invalid_arg "Bank.access: negative row";
  let g = t.timing in
  let start = max now t.ready in
  let cas_latency = if write then g.Timing.cwl else g.Timing.cl in
  match t.row with
  | Some open_row when open_row = row ->
    (* Row hit: column command only. *)
    let data_cycle = start + cas_latency in
    t.ready <- start + Timing.burst_cycles g;
    { issue_cycle = start; data_cycle; row_hit = true; activated = false; precharged = false }
  | current ->
    let precharged = current <> None in
    (* Respect tRAS before precharging an open row. *)
    let pre_at =
      if precharged then max start (t.activated_at + g.Timing.tras) else start
    in
    let act_at = if precharged then pre_at + g.Timing.trp else pre_at in
    let cas_at = act_at + g.Timing.trcd in
    let data_cycle = cas_at + cas_latency in
    t.row <- Some row;
    t.activated_at <- act_at;
    t.ready <- cas_at + Timing.burst_cycles g;
    { issue_cycle = cas_at; data_cycle; row_hit = false; activated = true; precharged }
