let simulate ?timing ?energy ?mapping records =
  Controller.run ?timing ?energy ?mapping records

let streaming_efficiency = 0.9

let analytic_seconds ?(timing = Timing.lpddr3_1600) bytes =
  if bytes < 0. then invalid_arg "Dram.analytic_seconds: negative bytes";
  if bytes = 0. then 0.
  else
    let overhead =
      Timing.cycles_to_seconds timing
        (timing.Timing.trcd + timing.Timing.cl + Timing.burst_cycles timing)
    in
    overhead
    +. (bytes /. (Timing.peak_bandwidth_bytes_per_s timing *. streaming_efficiency))

let analytic_energy_per_byte_j ?(timing = Timing.lpddr3_1600)
    ?(energy = Controller.default_energy) () =
  let burst = float_of_int (Timing.burst_bytes timing) in
  let row = float_of_int timing.Timing.row_bytes in
  (energy.Controller.read_burst_j /. burst)
  +. (energy.Controller.activate_j /. row)
  +. (energy.Controller.background_w
     /. (Timing.peak_bandwidth_bytes_per_s timing *. streaming_efficiency))

let analytic_energy_j ?timing ?energy bytes =
  if bytes < 0. then invalid_arg "Dram.analytic_energy_j: negative bytes";
  bytes *. analytic_energy_per_byte_j ?timing ?energy ()

let pp_stats ppf (s : Controller.stats) =
  let open Compass_util in
  Format.fprintf ppf
    "dram: %s in %s (%.2f GB/s, %.1f%% row hits, %d ACT, %d REF, %s)"
    (Units.bytes_to_string s.Controller.bytes)
    (Units.time_to_string s.Controller.seconds)
    (Controller.effective_bandwidth s /. 1e9)
    (100. *. Controller.row_hit_rate s)
    s.Controller.activates s.Controller.refreshes
    (Units.energy_to_string s.Controller.energy_j)
