type t = {
  tck_s : float;
  burst_length : int;
  bus_width_bits : int;
  cl : int;
  cwl : int;
  trcd : int;
  trp : int;
  tras : int;
  trfc : int;
  trefi : int;
  banks : int;
  row_bytes : int;
  capacity_bytes : float;
}

let make ?(tck_s = 1.25e-9) ?(burst_length = 8) ?(bus_width_bits = 32) ?(cl = 12)
    ?(cwl = 6) ?(trcd = 15) ?(trp = 15) ?(tras = 34) ?(trfc = 104) ?(trefi = 3120)
    ?(banks = 8) ?(row_bytes = 2048)
    ?(capacity_bytes = 8. *. 1024. *. 1024. *. 1024.) () =
  let positive name v = if v <= 0 then invalid_arg ("Timing.make: non-positive " ^ name) in
  if tck_s <= 0. then invalid_arg "Timing.make: non-positive tck";
  positive "burst_length" burst_length;
  positive "bus_width_bits" bus_width_bits;
  positive "cl" cl;
  positive "cwl" cwl;
  positive "trcd" trcd;
  positive "trp" trp;
  positive "tras" tras;
  positive "trfc" trfc;
  positive "trefi" trefi;
  positive "banks" banks;
  positive "row_bytes" row_bytes;
  if bus_width_bits mod 8 <> 0 then invalid_arg "Timing.make: bus width must be bytes";
  if capacity_bytes <= 0. then invalid_arg "Timing.make: non-positive capacity";
  {
    tck_s;
    burst_length;
    bus_width_bits;
    cl;
    cwl;
    trcd;
    trp;
    tras;
    trfc;
    trefi;
    banks;
    row_bytes;
    capacity_bytes;
  }

let lpddr3_1600 = make ()

let burst_bytes t = t.bus_width_bits / 8 * t.burst_length

(* DDR moves two transfers per clock. *)
let burst_cycles t = max 1 (t.burst_length / 2)

let peak_bandwidth_bytes_per_s t =
  float_of_int (burst_bytes t) /. (float_of_int (burst_cycles t) *. t.tck_s)

let cycles_to_seconds t cycles = float_of_int cycles *. t.tck_s
