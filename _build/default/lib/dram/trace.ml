type kind =
  | Read
  | Write

type record = {
  kind : kind;
  addr : int;
  bytes : int;
  tag : string;
}

let make kind ?(tag = "") ~addr ~bytes () =
  if addr < 0 then invalid_arg "Trace: negative address";
  if bytes <= 0 then invalid_arg "Trace: non-positive size";
  { kind; addr; bytes; tag }

let read = make Read
let write = make Write

let sum_by pred records =
  List.fold_left
    (fun acc r -> if pred r.kind then acc +. float_of_int r.bytes else acc)
    0. records

let total_bytes records = sum_by (fun _ -> true) records
let read_bytes records = sum_by (fun k -> k = Read) records
let write_bytes records = sum_by (fun k -> k = Write) records

let pp_record ppf r =
  Format.fprintf ppf "0x%08x %s %d %s" r.addr
    (match r.kind with Read -> "READ" | Write -> "WRITE")
    r.bytes r.tag

let to_lines records =
  String.concat "\n" (List.map (Format.asprintf "%a" pp_record) records)

let of_lines text =
  let parse_line line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '#' then Ok None
    else
      match String.split_on_char ' ' trimmed |> List.filter (fun w -> w <> "") with
      | addr_s :: kind_s :: bytes_s :: rest -> (
        let tag = String.concat " " rest in
        match (int_of_string_opt addr_s, int_of_string_opt bytes_s) with
        | Some addr, Some bytes when addr >= 0 && bytes > 0 -> (
          match String.uppercase_ascii kind_s with
          | "READ" -> Ok (Some (read ~tag ~addr ~bytes ()))
          | "WRITE" -> Ok (Some (write ~tag ~addr ~bytes ()))
          | _ -> Error line)
        | _ -> Error line)
      | _ -> Error line
  in
  let rec walk acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match parse_line line with
      | Ok (Some r) -> walk (r :: acc) rest
      | Ok None -> walk acc rest
      | Error l -> Error l)
  in
  walk [] (String.split_on_char '\n' text)
