(** Per-bank state machine: open row tracking and command timing.

    Banks follow an open-page policy (rows stay open until a conflicting
    access precharges them), which rewards the streaming access patterns the
    scheduler produces for weight and activation transfers. *)

type t

type outcome = {
  issue_cycle : int;  (** When the column command issued. *)
  data_cycle : int;  (** When the burst starts on the data bus. *)
  row_hit : bool;
  activated : bool;  (** An ACT command was needed. *)
  precharged : bool;  (** A PRE command was needed. *)
}

val create : Timing.t -> t

val open_row : t -> int option
(** Currently open row, if any. *)

val access : t -> now:int -> row:int -> write:bool -> outcome
(** [access bank ~now ~row ~write] performs one burst access at memory
    cycle [now] (or later if the bank is busy), updating the bank state and
    returning the timing outcome.  Row must be non-negative. *)

val block_until : t -> int -> unit
(** [block_until bank cycle] prevents any command before [cycle] (used for
    refresh windows). *)
