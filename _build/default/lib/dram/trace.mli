(** Memory access traces.

    The instruction scheduler emits one bulk record per weight block,
    activation load or activation store; the controller expands each record
    into device bursts.  This mirrors the paper's flow of "generating a
    memory trace from the scheduled instructions and feeding it into
    DRAMsim3". *)

type kind =
  | Read
  | Write

type record = {
  kind : kind;
  addr : int;  (** Byte address of the first burst. *)
  bytes : int;  (** Transfer size; must be positive. *)
  tag : string;  (** Provenance, e.g. ["weights:P0"] or ["act:conv2_1"]. *)
}

val read : ?tag:string -> addr:int -> bytes:int -> unit -> record
val write : ?tag:string -> addr:int -> bytes:int -> unit -> record
(** Constructors; raise [Invalid_argument] on negative address or
    non-positive size. *)

val total_bytes : record list -> float
val read_bytes : record list -> float
val write_bytes : record list -> float

val to_lines : record list -> string
(** DRAMsim3-style textual trace ("0x<addr> READ|WRITE <bytes> <tag>"), one
    record per line; useful for debugging and golden tests. *)

val of_lines : string -> (record list, string) result
(** Parse [to_lines] output (blank lines and [#] comments ignored); the
    error carries the first offending line. *)

val pp_record : Format.formatter -> record -> unit
