(** LPDDR3 device timing parameters.

    The paper feeds a scheduled-instruction memory trace into DRAMsim3 with
    an LPDDR3 8GB configuration; this module carries the equivalent timing
    constants (in memory-clock cycles at 800 MHz for LPDDR3-1600). *)

type t = {
  tck_s : float;  (** Memory clock period (1.25 ns at 1600 MT/s). *)
  burst_length : int;  (** Transfers per burst (8, DDR). *)
  bus_width_bits : int;  (** Channel width (x32). *)
  cl : int;  (** CAS (read) latency, cycles. *)
  cwl : int;  (** CAS write latency, cycles. *)
  trcd : int;  (** ACT to CAS delay. *)
  trp : int;  (** Precharge time. *)
  tras : int;  (** Minimum row-open time. *)
  trfc : int;  (** Refresh cycle time. *)
  trefi : int;  (** Average refresh interval. *)
  banks : int;
  row_bytes : int;  (** Page size per bank. *)
  capacity_bytes : float;
}

val lpddr3_1600 : t
(** The evaluation configuration: LPDDR3-1600 x32, 8 GB, 8 banks, 2 KB
    pages. *)

val make :
  ?tck_s:float ->
  ?burst_length:int ->
  ?bus_width_bits:int ->
  ?cl:int ->
  ?cwl:int ->
  ?trcd:int ->
  ?trp:int ->
  ?tras:int ->
  ?trfc:int ->
  ?trefi:int ->
  ?banks:int ->
  ?row_bytes:int ->
  ?capacity_bytes:float ->
  unit ->
  t
(** Parameterized constructor with positivity checks. *)

val burst_bytes : t -> int
(** Bytes moved per burst ([bus_width/8 * burst_length] = 32). *)

val burst_cycles : t -> int
(** Data-bus occupancy of one burst ([burst_length / 2] for DDR). *)

val peak_bandwidth_bytes_per_s : t -> float
(** Data-bus limit (6.4 GB/s for [lpddr3_1600]). *)

val cycles_to_seconds : t -> int -> float
