let sum = List.fold_left ( +. ) 0.

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    let log_one x =
      if x <= 0. then invalid_arg "Stats.geomean: non-positive value";
      log x
    in
    exp (mean (List.map log_one xs))

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let sq = List.map (fun x -> (x -. m) *. (x -. m)) xs in
    sqrt (mean sq)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let percentile p xs =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | xs ->
    let sorted = List.sort compare xs in
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let normalize_to base xs =
  if base = 0. then invalid_arg "Stats.normalize_to: zero base";
  List.map (fun x -> x /. base) xs
