lib/util/table.mli:
