lib/util/stats.mli:
