lib/util/ascii_plot.ml: Array Float List Printf String
