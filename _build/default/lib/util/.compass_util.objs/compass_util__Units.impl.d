lib/util/units.ml: Format List
