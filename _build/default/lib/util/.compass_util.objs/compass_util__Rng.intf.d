lib/util/rng.mli:
