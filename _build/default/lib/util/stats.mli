(** Small statistics helpers used by the estimator, the GA and the
    benchmark harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list.  Raises
    [Invalid_argument] if any value is non-positive. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val minimum : float list -> float
(** Smallest element.  Raises [Invalid_argument] on the empty list. *)

val maximum : float list -> float
(** Largest element.  Raises [Invalid_argument] on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile (0 <= p <= 100) using
    nearest-rank on the sorted list.  Raises [Invalid_argument] on the empty
    list or out-of-range [p]. *)

val sum : float list -> float
(** Sum of the elements. *)

val normalize_to : float -> float list -> float list
(** [normalize_to base xs] divides every element by [base].  Raises
    [Invalid_argument] when [base = 0]. *)
