(** Formatting of physical quantities (bytes, time, energy, rates).

    The simulator computes in SI base units: seconds, joules, bytes.
    These helpers render them with a sensible magnitude prefix for reports
    and benchmark output. *)

val kib : float
(** 1024 bytes. *)

val mib : float
(** 1024 * 1024 bytes. *)

val pp_bytes : Format.formatter -> float -> unit
(** Render a byte count, e.g. ["1.125 MB"].  Uses binary (1024) prefixes to
    match the paper's capacity figures. *)

val pp_time : Format.formatter -> float -> unit
(** Render a duration in seconds, e.g. ["12.8 us"]. *)

val pp_energy : Format.formatter -> float -> unit
(** Render an energy in joules, e.g. ["3.2 mJ"]. *)

val pp_rate : Format.formatter -> float -> unit
(** Render a throughput in samples per second, e.g. ["431.2 inf/s"]. *)

val pp_power : Format.formatter -> float -> unit
(** Render a power in watts. *)

val bytes_to_string : float -> string
(** [bytes_to_string b] is [Format.asprintf "%a" pp_bytes b]. *)

val time_to_string : float -> string
(** [time_to_string s] is [Format.asprintf "%a" pp_time s]. *)

val energy_to_string : float -> string
(** [energy_to_string j] is [Format.asprintf "%a" pp_energy j]. *)
