let kib = 1024.
let mib = 1024. *. 1024.

(* Pick the largest prefix whose scaled mantissa is >= 1. *)
let scaled prefixes base value =
  let rec choose = function
    | [] -> invalid_arg "Units.scaled: no prefixes"
    | [ (p, scale) ] -> (value /. scale, p)
    | (p, scale) :: rest -> if abs_float value >= scale then (value /. scale, p) else choose rest
  in
  choose (List.map (fun (p, e) -> (p, base ** e)) prefixes)

let pp_with prefixes base unit ppf value =
  if value = 0. then Format.fprintf ppf "0 %s" unit
  else
    let mantissa, prefix = scaled prefixes base value in
    Format.fprintf ppf "%.3g %s%s" mantissa prefix unit

let byte_prefixes = [ ("G", 3.); ("M", 2.); ("K", 1.); ("", 0.) ]
let si_down = [ ("", 0.); ("m", -1.); ("u", -2.); ("n", -3.); ("p", -4.) ]

let pp_bytes ppf b = pp_with byte_prefixes 1024. "B" ppf b
let pp_time ppf s = pp_with si_down 1000. "s" ppf s
let pp_energy ppf j = pp_with si_down 1000. "J" ppf j
let pp_power ppf w = pp_with si_down 1000. "W" ppf w
let pp_rate ppf r = Format.fprintf ppf "%.4g inf/s" r

let bytes_to_string b = Format.asprintf "%a" pp_bytes b
let time_to_string s = Format.asprintf "%a" pp_time s
let energy_to_string j = Format.asprintf "%a" pp_energy j
