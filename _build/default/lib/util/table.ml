type align =
  | Left
  | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ?(aligns = []) headers =
  let n = List.length headers in
  let padded =
    let rec pad i = function
      | a :: rest -> if i < n then a :: pad (i + 1) rest else []
      | [] -> if i < n then Left :: pad (i + 1) [] else []
    in
    pad 0 aligns
  in
  { headers; aligns = padded; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: too many cells";
  let padded = cells @ List.init (n - k) (fun _ -> "") in
  t.rows <- padded :: t.rows

let row_count t = List.length t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad align w s =
    let fill = String.make (w - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let render_row row =
    let cells =
      List.mapi (fun c cell -> pad (List.nth t.aligns c) (List.nth widths c) cell) row
    in
    String.concat " | " cells
  in
  let sep =
    String.concat "-+-" (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let print t =
  print_string (render t);
  print_newline ()
