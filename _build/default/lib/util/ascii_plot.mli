(** Terminal plots for the figure reproductions.

    The paper's figures are bar charts (Figs 6-9), a heat map (Fig 5) and a
    scatter over generations (Fig 10); these helpers render equivalent ASCII
    artifacts so the benchmark output is self-contained. *)

val bar_chart :
  ?width:int -> title:string -> unit -> (string * float) list -> string
(** [bar_chart ~title () series] renders one horizontal bar per labelled
    value, scaled to [width] characters (default 50).  Non-positive maxima
    degrade to zero-length bars. *)

val grouped_bars :
  ?width:int ->
  title:string ->
  group_labels:string list ->
  series:(string * float list) list ->
  unit ->
  string
(** [grouped_bars ~group_labels ~series ()] renders a grouped bar chart:
    each series has one value per group; bars of the same group are drawn
    consecutively.  Series value lists must have the same length as
    [group_labels]. *)

val heat_map :
  title:string -> render_cell:(int -> int -> char) -> rows:int -> cols:int -> string
(** [heat_map ~render_cell ~rows ~cols] draws a [rows] x [cols] character
    grid by sampling [render_cell r c]; used for the validity maps. *)

val scatter :
  ?width:int ->
  ?height:int ->
  title:string ->
  points:(float * float * char) list ->
  unit ->
  string
(** [scatter ~points ()] draws labelled points [(x, y, marker)] on a
    [width] x [height] character canvas (defaults 70 x 20), with the axes
    ranges computed from the data.  Later points overwrite earlier ones on
    collisions. *)
