(** Plain-text table rendering for reports and the benchmark harness.

    A table is a header row plus data rows of strings; columns are padded to
    the widest cell.  Numeric convenience constructors right-align. *)

type align =
  | Left
  | Right

type t
(** A table under construction. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table with the given column headers.
    [aligns] defaults to [Left] for every column; a short list is padded
    with [Left]. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a data row.  Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val row_count : t -> int
(** Number of data rows added so far. *)

val render : t -> string
(** Render with a header separator, e.g.:
    {v
    name      | value
    ----------+------
    ResNet18  |  5.57
    v} *)

val print : t -> unit
(** [print t] writes [render t] followed by a newline to stdout. *)
