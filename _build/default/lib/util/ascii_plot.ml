let bar ~width ~vmax v =
  if vmax <= 0. then ""
  else
    let n = int_of_float (Float.round (float_of_int width *. v /. vmax)) in
    String.make (max 0 (min width n)) '#'

let bar_chart ?(width = 50) ~title () series =
  let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0. series in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 series
  in
  let line (label, v) =
    Printf.sprintf "%-*s | %-*s %.4g" label_w label width (bar ~width ~vmax v) v
  in
  String.concat "\n" (title :: List.map line series)

let grouped_bars ?(width = 40) ~title ~group_labels ~series () =
  let ngroups = List.length group_labels in
  List.iter
    (fun (name, vs) ->
      if List.length vs <> ngroups then
        invalid_arg ("Ascii_plot.grouped_bars: series " ^ name ^ " length mismatch"))
    series;
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left max acc vs)
      0. series
  in
  let label_w =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 series
  in
  let group_block g glabel =
    let lines =
      List.map
        (fun (name, vs) ->
          let v = List.nth vs g in
          Printf.sprintf "  %-*s | %-*s %.4g" label_w name width (bar ~width ~vmax v) v)
        series
    in
    String.concat "\n" ((glabel ^ ":") :: lines)
  in
  String.concat "\n" (title :: List.mapi group_block group_labels)

let heat_map ~title ~render_cell ~rows ~cols =
  let row r = String.init cols (fun c -> render_cell r c) in
  String.concat "\n" (title :: List.init rows row)

let scatter ?(width = 70) ?(height = 20) ~title ~points () =
  match points with
  | [] -> title ^ "\n(no points)"
  | _ ->
    let xs = List.map (fun (x, _, _) -> x) points in
    let ys = List.map (fun (_, y, _) -> y) points in
    let xmin = List.fold_left min (List.hd xs) xs in
    let xmax = List.fold_left max (List.hd xs) xs in
    let ymin = List.fold_left min (List.hd ys) ys in
    let ymax = List.fold_left max (List.hd ys) ys in
    let canvas = Array.make_matrix height width ' ' in
    let place (x, y, marker) =
      let norm v lo hi n =
        if hi = lo then 0
        else
          let f = (v -. lo) /. (hi -. lo) in
          max 0 (min (n - 1) (int_of_float (f *. float_of_int (n - 1))))
      in
      let c = norm x xmin xmax width in
      let r = height - 1 - norm y ymin ymax height in
      canvas.(r).(c) <- marker
    in
    List.iter place points;
    let rows =
      Array.to_list (Array.map (fun row -> "|" ^ String.init width (Array.get row)) canvas)
    in
    let footer =
      Printf.sprintf "+%s\n x: [%.4g, %.4g]  y: [%.4g, %.4g]"
        (String.make width '-') xmin xmax ymin ymax
    in
    String.concat "\n" ((title :: rows) @ [ footer ])
