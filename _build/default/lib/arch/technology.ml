type t = {
  name : string;
  row_write_latency_s : float;
  write_energy_per_bit_j : float;
  endurance_cycles : float option;
  retention : string;
}

let sram =
  {
    name = "sram";
    row_write_latency_s = 100e-9;
    write_energy_per_bit_j = 1e-12;
    endurance_cycles = None;
    retention = "volatile";
  }

let reram =
  {
    name = "reram";
    row_write_latency_s = 10e-6;
    write_energy_per_bit_j = 100e-12;
    endurance_cycles = Some 1e6;
    retention = "non-volatile (years)";
  }

let mram =
  {
    name = "mram";
    row_write_latency_s = 2e-6;
    write_energy_per_bit_j = 30e-12;
    endurance_cycles = Some 1e15;
    retention = "non-volatile (years)";
  }

let presets = [ sram; reram; mram ]

let by_name name =
  let name = String.lowercase_ascii name in
  List.find (fun t -> t.name = name) presets

let crossbar ?(base = Crossbar.default) t =
  Crossbar.make ~rows:base.Crossbar.rows ~cols:base.Crossbar.cols
    ~cell_bits:base.Crossbar.cell_bits ~weight_bits:base.Crossbar.weight_bits
    ~activation_bits:base.Crossbar.activation_bits
    ~mvm_latency_s:base.Crossbar.mvm_latency_s
    ~row_write_latency_s:t.row_write_latency_s
    ~mvm_energy_j:base.Crossbar.mvm_energy_j
    ~write_energy_per_bit_j:t.write_energy_per_bit_j ()

let chip t (base : Config.chip) =
  Config.custom
    ~label:(base.Config.label ^ "-" ^ t.name)
    ~cores:base.Config.cores
    ~macros_per_core:base.Config.core.Config.macros_per_core
    ~crossbar:(crossbar ~base:base.Config.crossbar t)
    ~bus:base.Config.bus ~chip_power_w:base.Config.chip_power_w ~dram:base.Config.dram
    ()

let lifetime_s t ~rewrites_per_cell_per_s =
  if rewrites_per_cell_per_s < 0. then
    invalid_arg "Technology.lifetime_s: negative rewrite rate";
  match t.endurance_cycles with
  | None -> None
  | Some cycles ->
    if rewrites_per_cell_per_s = 0. then Some infinity
    else Some (cycles /. rewrites_per_cell_per_s)
