(** Crossbar (CIM macro) geometry, timing and energy.

    The evaluation models the 16nm IMC-SRAM prototype of Jia et al.
    (ISSCC'21): a 256x256 array of 1-bit cells computing with 4-bit weights
    (4 cells per weight, bit-sliced along columns) and 4-bit activations
    (bit-serial inputs).  A macro therefore stores 256x64 logical weights =
    8 KB, which reproduces the paper's chip capacities exactly
    (16 cores x 9 macros x 8 KB = 1.125 MB for chip S). *)

type t = {
  rows : int;  (** Physical wordlines (input lines). *)
  cols : int;  (** Physical bitlines (1-bit cells per row). *)
  cell_bits : int;  (** Bits stored per cell. *)
  weight_bits : int;  (** Weight precision; must be a multiple of [cell_bits]. *)
  activation_bits : int;  (** Input precision (bit-serial). *)
  mvm_latency_s : float;
      (** One full-array matrix-vector multiply: four bit-serial input
          phases including ADC readout of every column group (400 ns by
          default). *)
  row_write_latency_s : float;  (** Programming one wordline. *)
  mvm_energy_j : float;  (** Energy of one full-array MVM. *)
  write_energy_per_bit_j : float;
}

val default : t
(** The 256x256 / 4-bit configuration used throughout the paper. *)

val make :
  ?rows:int ->
  ?cols:int ->
  ?cell_bits:int ->
  ?weight_bits:int ->
  ?activation_bits:int ->
  ?mvm_latency_s:float ->
  ?row_write_latency_s:float ->
  ?mvm_energy_j:float ->
  ?write_energy_per_bit_j:float ->
  unit ->
  t
(** Parameterized constructor (paper Sec. V-B: eNVM technologies are modelled
    by changing write latency/energy).  Raises [Invalid_argument] on
    non-positive dimensions or if [weight_bits] is not a positive multiple of
    [cell_bits]. *)

val cols_per_weight : t -> int
(** Physical columns occupied by one logical weight. *)

val logical_cols : t -> int
(** Logical weight columns per macro ([cols / cols_per_weight]). *)

val weight_capacity : t -> int
(** Logical weights stored by a full macro. *)

val capacity_bytes : t -> float
(** Weight bytes stored by a full macro (8 KB for [default]). *)

val tile_grid : t -> rows:int -> cols:int -> int * int
(** [tile_grid xbar ~rows ~cols] is the [(row_blocks, col_blocks)] grid of
    macros needed to hold a [rows] x [cols] logical weight matrix. *)

val tiles_for : t -> rows:int -> cols:int -> int
(** Total macro count for a weight matrix (product of [tile_grid]). *)

val write_latency_s : t -> float
(** Programming a full macro ([rows] wordline writes). *)

val write_energy_j : t -> bits:float -> float
(** Energy to program [bits] cell-bits. *)

val pp : Format.formatter -> t -> unit
