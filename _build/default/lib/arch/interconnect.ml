type t = {
  bandwidth_bytes_per_s : float;
  base_latency_s : float;
  energy_per_byte_j : float;
}

let make ?(bandwidth_bytes_per_s = 32e9) ?(base_latency_s = 10e-9)
    ?(energy_per_byte_j = 4e-12) () =
  if bandwidth_bytes_per_s <= 0. then
    invalid_arg "Interconnect.make: non-positive bandwidth";
  if base_latency_s < 0. || energy_per_byte_j < 0. then
    invalid_arg "Interconnect.make: negative cost";
  { bandwidth_bytes_per_s; base_latency_s; energy_per_byte_j }

let default = make ()

let transfer_time_s t ~bytes =
  if bytes < 0. then invalid_arg "Interconnect.transfer_time_s: negative bytes";
  if bytes = 0. then 0. else t.base_latency_s +. (bytes /. t.bandwidth_bytes_per_s)

let transfer_energy_j t ~bytes =
  if bytes < 0. then invalid_arg "Interconnect.transfer_energy_j: negative bytes";
  bytes *. t.energy_per_byte_j
