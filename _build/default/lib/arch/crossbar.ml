type t = {
  rows : int;
  cols : int;
  cell_bits : int;
  weight_bits : int;
  activation_bits : int;
  mvm_latency_s : float;
  row_write_latency_s : float;
  mvm_energy_j : float;
  write_energy_per_bit_j : float;
}

let make ?(rows = 256) ?(cols = 256) ?(cell_bits = 1) ?(weight_bits = 4)
    ?(activation_bits = 4) ?(mvm_latency_s = 400e-9) ?(row_write_latency_s = 100e-9)
    ?(mvm_energy_j = 0.5e-9) ?(write_energy_per_bit_j = 1e-12) () =
  if rows <= 0 || cols <= 0 then invalid_arg "Crossbar.make: non-positive dimension";
  if cell_bits <= 0 || weight_bits <= 0 || activation_bits <= 0 then
    invalid_arg "Crossbar.make: non-positive precision";
  if weight_bits mod cell_bits <> 0 then
    invalid_arg "Crossbar.make: weight_bits must be a multiple of cell_bits";
  if cols mod (weight_bits / cell_bits) <> 0 then
    invalid_arg "Crossbar.make: cols must be divisible by cols-per-weight";
  if mvm_latency_s <= 0. || row_write_latency_s <= 0. then
    invalid_arg "Crossbar.make: non-positive latency";
  if mvm_energy_j < 0. || write_energy_per_bit_j < 0. then
    invalid_arg "Crossbar.make: negative energy";
  {
    rows;
    cols;
    cell_bits;
    weight_bits;
    activation_bits;
    mvm_latency_s;
    row_write_latency_s;
    mvm_energy_j;
    write_energy_per_bit_j;
  }

let default = make ()

let cols_per_weight t = t.weight_bits / t.cell_bits
let logical_cols t = t.cols / cols_per_weight t
let weight_capacity t = t.rows * logical_cols t

let capacity_bytes t =
  float_of_int (weight_capacity t) *. float_of_int t.weight_bits /. 8.

let ceil_div a b = (a + b - 1) / b

let tile_grid t ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Crossbar.tile_grid: non-positive matrix";
  (ceil_div rows t.rows, ceil_div cols (logical_cols t))

let tiles_for t ~rows ~cols =
  let rb, cb = tile_grid t ~rows ~cols in
  rb * cb

let write_latency_s t = float_of_int t.rows *. t.row_write_latency_s

let write_energy_j t ~bits =
  if bits < 0. then invalid_arg "Crossbar.write_energy_j: negative bits";
  bits *. t.write_energy_per_bit_j

let pp ppf t =
  Format.fprintf ppf "%dx%d xbar, %db cells, %db weights (%s/macro)" t.rows t.cols
    t.cell_bits t.weight_bits
    (Compass_util.Units.bytes_to_string (capacity_bytes t))
