(** Hardware configurations (paper Table I).

    Three chip presets S/M/L share the core design and differ in macros per
    core, reproducing the paper's capacities (1.125 / 2.0 / 4.5 MB) and chip
    powers (1.57 / 2.80 / 6.30 W). *)

type core = {
  macros_per_core : int;
  vfus_per_core : int;  (** 12 vector functional units. *)
  vfu_power_w : float;  (** All VFUs of a core together (22.8 mW). *)
  vfu_energy_per_op_j : float;
  local_mem_banks : int;  (** 6 banks. *)
  local_mem_bytes : int;  (** Per bank (64 KB). *)
  local_mem_power_w : float;  (** 18.0 mW. *)
  control_power_w : float;  (** 8.0 mW. *)
  clock_hz : float;  (** 1 GHz core clock. *)
}

type external_memory = {
  bandwidth_bytes_per_s : float;  (** LPDDR3-1600 x32 peak: 6.4 GB/s. *)
  energy_per_byte_j : float;  (** Average access energy for streaming. *)
  request_overhead_s : float;  (** First-access latency of a bulk request. *)
  capacity_bytes : float;  (** 8 GB. *)
}

type chip = {
  label : string;
  cores : int;
  core : core;
  crossbar : Crossbar.t;
  bus : Interconnect.t;
  chip_power_w : float;  (** Total chip power from Table I. *)
  dram : external_memory;
}

val default_core : macros_per_core:int -> core
val default_dram : external_memory

val chip_s : chip
(** 16 cores x 9 macros = 1.125 MB. *)

val chip_m : chip
(** 16 cores x 16 macros = 2.0 MB. *)

val chip_l : chip
(** 16 cores x 36 macros = 4.5 MB. *)

val presets : (string * chip) list
(** [("S", chip_s); ("M", chip_m); ("L", chip_l)]. *)

val by_label : string -> chip
(** Case-insensitive preset lookup.  Raises [Not_found]. *)

val custom :
  label:string ->
  cores:int ->
  macros_per_core:int ->
  ?crossbar:Crossbar.t ->
  ?bus:Interconnect.t ->
  ?chip_power_w:float ->
  ?dram:external_memory ->
  unit ->
  chip
(** Build a non-preset chip; [chip_power_w] defaults to a linear
    interpolation from the per-component powers.  Raises [Invalid_argument]
    on non-positive core/macro counts. *)

val total_macros : chip -> int
val capacity_bytes : chip -> float
(** On-chip weight capacity. *)

val core_capacity_bytes : chip -> float
(** Weight capacity of a single core — the partition-unit size bound. *)

val core_static_power_w : core -> float
(** VFU + local memory + control power of one core. *)

val macro_static_power_w : chip -> float
(** Residual chip power attributed to each macro (chip power minus core
    component power, divided by macro count). *)

val table1 : unit -> Compass_util.Table.t
(** Render the three presets as a Table I lookalike. *)

val pp_chip : Format.formatter -> chip -> unit
