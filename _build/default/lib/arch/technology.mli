(** In-memory computing technology presets (paper Sec. V-B).

    The evaluation uses an IMC-SRAM prototype, but the compiler extends to
    emerging non-volatile memories by re-parameterizing the crossbar's
    write path: ReRAM pays slow, energy-hungry SET/RESET cycles and has
    finite endurance; MRAM writes faster than ReRAM but still an order of
    magnitude above SRAM.  Because COMPASS controls how often weights are
    rewritten, per-cell endurance becomes a first-class compilation
    metric. *)

type t = {
  name : string;
  row_write_latency_s : float;
  write_energy_per_bit_j : float;
  endurance_cycles : float option;
      (** Writes a cell tolerates before wear-out; [None] = unlimited
          (SRAM). *)
  retention : string;  (** Informal volatility note for reports. *)
}

val sram : t
(** 16nm IMC-SRAM (the paper's evaluation target). *)

val reram : t
(** HfOx-class ReRAM: ~10 us row programming, ~100 pJ/bit, 1e6-cycle
    endurance. *)

val mram : t
(** STT-MRAM: ~2 us row programming, ~30 pJ/bit, effectively unlimited
    endurance but costly writes. *)

val presets : t list

val by_name : string -> t
(** Case-insensitive.  Raises [Not_found]. *)

val crossbar : ?base:Crossbar.t -> t -> Crossbar.t
(** [crossbar tech] is [base] (default [Crossbar.default]) with the
    technology's write path. *)

val chip : t -> Config.chip -> Config.chip
(** Re-target a chip preset to the technology (same cores/macros/power
    envelope, different write behaviour). *)

val lifetime_s : t -> rewrites_per_cell_per_s:float -> float option
(** Expected time until the most-rewritten cell exceeds the endurance
    budget; [None] when endurance is unlimited.  Raises
    [Invalid_argument] on a negative rate; an idle part (rate 0) returns
    [Some infinity]. *)
