let non_negative name v = if v < 0. then invalid_arg ("Energy." ^ name ^ ": negative count")

let mvm_j (chip : Config.chip) ~macro_ops =
  non_negative "mvm_j" macro_ops;
  macro_ops *. chip.Config.crossbar.Crossbar.mvm_energy_j

let weight_write_j (chip : Config.chip) ~bytes =
  non_negative "weight_write_j" bytes;
  let xbar = chip.Config.crossbar in
  (* bytes of logical weights -> programmed cell bits *)
  let cell_bits =
    bytes *. 8. /. float_of_int xbar.Crossbar.weight_bits
    *. float_of_int xbar.Crossbar.cell_bits
    *. float_of_int (Crossbar.cols_per_weight xbar)
  in
  Crossbar.write_energy_j xbar ~bits:cell_bits

let vfu_j (chip : Config.chip) ~ops =
  non_negative "vfu_j" ops;
  ops *. chip.Config.core.Config.vfu_energy_per_op_j

let bus_j (chip : Config.chip) ~bytes =
  Interconnect.transfer_energy_j chip.Config.bus ~bytes

let dram_j (chip : Config.chip) ~bytes =
  non_negative "dram_j" bytes;
  bytes *. chip.Config.dram.Config.energy_per_byte_j

let static_j (chip : Config.chip) ~seconds =
  non_negative "static_j" seconds;
  seconds *. chip.Config.chip_power_w

let pp_breakdown ppf components =
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0. components in
  let line (label, v) =
    let pct = if total > 0. then 100. *. v /. total else 0. in
    Format.fprintf ppf "  %-14s %12s (%5.1f%%)@." label
      (Compass_util.Units.energy_to_string v)
      pct
  in
  List.iter line components;
  Format.fprintf ppf "  %-14s %12s@." "total" (Compass_util.Units.energy_to_string total)
