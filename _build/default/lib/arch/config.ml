type core = {
  macros_per_core : int;
  vfus_per_core : int;
  vfu_power_w : float;
  vfu_energy_per_op_j : float;
  local_mem_banks : int;
  local_mem_bytes : int;
  local_mem_power_w : float;
  control_power_w : float;
  clock_hz : float;
}

type external_memory = {
  bandwidth_bytes_per_s : float;
  energy_per_byte_j : float;
  request_overhead_s : float;
  capacity_bytes : float;
}

type chip = {
  label : string;
  cores : int;
  core : core;
  crossbar : Crossbar.t;
  bus : Interconnect.t;
  chip_power_w : float;
  dram : external_memory;
}

let default_core ~macros_per_core =
  if macros_per_core <= 0 then invalid_arg "Config.default_core: non-positive macros";
  {
    macros_per_core;
    vfus_per_core = 12;
    vfu_power_w = 22.8e-3;
    vfu_energy_per_op_j = 2e-12;
    local_mem_banks = 6;
    local_mem_bytes = 64 * 1024;
    local_mem_power_w = 18.0e-3;
    control_power_w = 8.0e-3;
    clock_hz = 1e9;
  }

let default_dram =
  {
    bandwidth_bytes_per_s = 6.4e9;
    energy_per_byte_j = 320e-12;
    request_overhead_s = 100e-9;
    capacity_bytes = 8. *. 1024. *. 1024. *. 1024.;
  }

let core_static_power_w core =
  core.vfu_power_w +. core.local_mem_power_w +. core.control_power_w

let make_chip ~label ~cores ~macros_per_core ~crossbar ~bus ~chip_power_w ~dram =
  if cores <= 0 then invalid_arg "Config: non-positive core count";
  let core = default_core ~macros_per_core in
  { label; cores; core; crossbar; bus; chip_power_w; dram }

(* Table I chip powers. *)
let chip_s =
  make_chip ~label:"S" ~cores:16 ~macros_per_core:9 ~crossbar:Crossbar.default
    ~bus:Interconnect.default ~chip_power_w:1.57 ~dram:default_dram

let chip_m =
  make_chip ~label:"M" ~cores:16 ~macros_per_core:16 ~crossbar:Crossbar.default
    ~bus:Interconnect.default ~chip_power_w:2.80 ~dram:default_dram

let chip_l =
  make_chip ~label:"L" ~cores:16 ~macros_per_core:36 ~crossbar:Crossbar.default
    ~bus:Interconnect.default ~chip_power_w:6.30 ~dram:default_dram

let presets = [ ("S", chip_s); ("M", chip_m); ("L", chip_l) ]

let by_label label = List.assoc (String.uppercase_ascii label) presets

(* Residual (macro + interconnect) power per macro, interpolated from the
   S preset so custom chips get a consistent default total power. *)
let macro_power_estimate_w =
  let core_part = 16. *. core_static_power_w chip_s.core in
  (chip_s.chip_power_w -. core_part) /. float_of_int (16 * 9)

let custom ~label ~cores ~macros_per_core ?(crossbar = Crossbar.default)
    ?(bus = Interconnect.default) ?chip_power_w ?(dram = default_dram) () =
  if macros_per_core <= 0 then invalid_arg "Config.custom: non-positive macros";
  let core = default_core ~macros_per_core in
  let chip_power_w =
    match chip_power_w with
    | Some p -> p
    | None ->
      (float_of_int cores *. core_static_power_w core)
      +. (float_of_int (cores * macros_per_core) *. macro_power_estimate_w)
  in
  make_chip ~label ~cores ~macros_per_core ~crossbar ~bus ~chip_power_w ~dram

let total_macros chip = chip.cores * chip.core.macros_per_core

let capacity_bytes chip =
  float_of_int (total_macros chip) *. Crossbar.capacity_bytes chip.crossbar

let core_capacity_bytes chip =
  float_of_int chip.core.macros_per_core *. Crossbar.capacity_bytes chip.crossbar

let macro_static_power_w chip =
  let core_part = float_of_int chip.cores *. core_static_power_w chip.core in
  max 0. (chip.chip_power_w -. core_part) /. float_of_int (total_macros chip)

let table1 () =
  let open Compass_util in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "Chip"; "#Cores"; "#Crossbar/Core"; "Capacity(MB)"; "Power(W)" ]
  in
  let row (_, chip) =
    Table.add_row table
      [
        chip.label;
        string_of_int chip.cores;
        string_of_int chip.core.macros_per_core;
        Printf.sprintf "%.3f" (capacity_bytes chip /. Units.mib);
        Printf.sprintf "%.2f" chip.chip_power_w;
      ]
  in
  List.iter row presets;
  table

let pp_chip ppf chip =
  Format.fprintf ppf "chip %s: %d cores x %d macros (%s on-chip, %.2f W)" chip.label
    chip.cores chip.core.macros_per_core
    (Compass_util.Units.bytes_to_string (capacity_bytes chip))
    chip.chip_power_w
