lib/arch/interconnect.mli:
