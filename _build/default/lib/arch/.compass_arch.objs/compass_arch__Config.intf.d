lib/arch/config.mli: Compass_util Crossbar Format Interconnect
