lib/arch/crossbar.ml: Compass_util Format
