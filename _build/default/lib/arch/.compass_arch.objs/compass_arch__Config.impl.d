lib/arch/config.ml: Compass_util Crossbar Format Interconnect List Printf String Table Units
