lib/arch/technology.mli: Config Crossbar
