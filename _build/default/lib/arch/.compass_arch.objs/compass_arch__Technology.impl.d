lib/arch/technology.ml: Config Crossbar List String
