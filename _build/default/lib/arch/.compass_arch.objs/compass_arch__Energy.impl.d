lib/arch/energy.ml: Compass_util Config Crossbar Format Interconnect List
