lib/arch/crossbar.mli: Format
