lib/arch/energy.mli: Config Format
