lib/arch/interconnect.ml:
