(** On-chip bus interconnect between PIM cores and the global memory.

    The paper uses a shared bus (Sec. IV-A1); all inter-core and
    core-to-global-memory traffic serializes over it. *)

type t = {
  bandwidth_bytes_per_s : float;
  base_latency_s : float;  (** Arbitration + flight time per transfer. *)
  energy_per_byte_j : float;
}

val default : t
(** 32 GB/s shared bus, 10 ns arbitration, 4 pJ/byte. *)

val make :
  ?bandwidth_bytes_per_s:float ->
  ?base_latency_s:float ->
  ?energy_per_byte_j:float ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive bandwidth or negative cost. *)

val transfer_time_s : t -> bytes:float -> float
(** Latency for one transfer of [bytes] (base latency + serialization). *)

val transfer_energy_j : t -> bytes:float -> float
