(** Chip-level energy accounting used by the performance estimator.

    All functions take aggregate operation counts and return joules; the
    DRAM term here is the analytic streaming approximation — the
    trace-accurate number comes from [Compass_dram] when a schedule is
    simulated. *)

val mvm_j : Config.chip -> macro_ops:float -> float
(** Energy of [macro_ops] full-array crossbar MVM operations. *)

val weight_write_j : Config.chip -> bytes:float -> float
(** Cell-programming energy for [bytes] of weights (excludes the DRAM read
    and bus transfer, accounted separately). *)

val vfu_j : Config.chip -> ops:float -> float
(** Energy of [ops] vector element operations. *)

val bus_j : Config.chip -> bytes:float -> float
(** On-chip bus transfer energy. *)

val dram_j : Config.chip -> bytes:float -> float
(** Analytic external-memory access energy. *)

val static_j : Config.chip -> seconds:float -> float
(** Background energy of the whole chip over a duration. *)

val pp_breakdown :
  Format.formatter ->
  (string * float) list ->
  unit
(** Render labelled energy components with percentages of their sum. *)
