(** Crossbar weight images: the compiler's final artifact.

    Given a plan and trained weights, produce — for every partition unit,
    replica, and macro tile — the integer code image that the weight-write
    phase programs into that macro (4-bit symmetric quantization per
    layer, [Compass_nn.Quant]).  Rows are the layer's flattened input
    dimension, logical columns its output channels; edge tiles are
    zero-padded.

    [reconstruct_layer] inverts the packing, and the test suite asserts it
    reproduces the quantized weight matrix exactly — the backend cannot
    scramble, drop or duplicate a weight. *)

type macro_image = {
  layer : Compass_nn.Graph.node;
  unit_index : int;
  replica : int;
  core : int;  (** Core the mapping placed this replica on. *)
  row_block : int;  (** Tile position within the unit's grid. *)
  col_block : int;
  codes : int array;
      (** [rows * logical_cols] signed codes, row-major, zero beyond the
          matrix edge. *)
}

type t = {
  partition : int;
  images : macro_image list;
  specs : (Compass_nn.Graph.node * Compass_nn.Quant.spec) list;
      (** Per-layer quantization scales needed to interpret the codes. *)
}

val pack_partition :
  Dataflow.ctx ->
  Partition.t ->
  partition:int ->
  weights:Compass_nn.Executor.weights ->
  ?bits:int ->
  unit ->
  t
(** Pack one partition of the group ([bits] defaults to the crossbar's
    weight precision).  Raises [Invalid_argument] on missing weights or an
    out-of-range partition index. *)

val total_macros : t -> int
(** Number of macro images (tiles x replicas). *)

val programmed_bytes : t -> float
(** Code storage at the quantization precision, replicas included. *)

val reconstruct_layer : Dataflow.ctx -> t -> Compass_nn.Graph.node -> float array option
(** Rebuild the layer's full (quantized) weight array from replica-0
    images; [None] if the layer has no units in this partition.  Partial
    layers rebuild only the columns owned by the partition (other entries
    are 0). *)
