(** Baseline partitioning schemes (paper Sec. IV-A2).

    - {b greedy} packs as many consecutive partition units as the chip
      allows before cutting, leaving almost no spare macros for
      replication;
    - {b layerwise} maps one Conv/Linear layer per partition (splitting
      layers that exceed the chip), attaching trailing non-mappable nodes
      to their producer's partition, and replicates aggressively inside
      each tiny partition at the cost of moving every intermediate feature
      through DRAM. *)

val greedy : Validity.t -> Partition.t
(** Maximal-span walk over the validity map. *)

val layerwise : Validity.t -> Partition.t
(** One layer (or feasible fraction of a layer) per partition. *)

val scheme_names : string list
(** ["compass"; "greedy"; "layerwise"]. *)
