type span = {
  start_ : int;
  stop : int;
}

type t = int array

let check cuts =
  let n = Array.length cuts in
  if n < 2 then invalid_arg "Partition.of_cuts: need at least one partition";
  if cuts.(0) <> 0 then invalid_arg "Partition.of_cuts: first cut must be 0";
  for i = 1 to n - 1 do
    if cuts.(i) <= cuts.(i - 1) then
      invalid_arg "Partition.of_cuts: cuts must strictly increase"
  done

let of_cuts cuts =
  let copy = Array.copy cuts in
  check copy;
  copy

let of_spans spans =
  match spans with
  | [] -> invalid_arg "Partition.of_spans: empty"
  | first :: _ ->
    if first.start_ <> 0 then invalid_arg "Partition.of_spans: must start at 0";
    let rec collect acc = function
      | [] -> List.rev acc
      | [ s ] -> List.rev (s.stop :: acc)
      | s :: (next :: _ as rest) ->
        if next.start_ <> s.stop then invalid_arg "Partition.of_spans: gap or overlap";
        collect (s.stop :: acc) rest
    in
    of_cuts (Array.of_list (0 :: collect [] spans))

let singleton m =
  if m <= 0 then invalid_arg "Partition.singleton: non-positive size";
  [| 0; m |]

let cuts t = Array.copy t

let partition_count t = Array.length t - 1

let total_units t = t.(Array.length t - 1)

let span_at t k =
  if k < 0 || k >= partition_count t then invalid_arg "Partition.span_at: out of range";
  { start_ = t.(k); stop = t.(k + 1) }

let spans t = List.init (partition_count t) (span_at t)

let span_length s = s.stop - s.start_

let partition_of_unit t u =
  if u < 0 || u >= total_units t then invalid_arg "Partition.partition_of_unit";
  (* Find the last cut <= u. *)
  let lo = ref 0 and hi = ref (Array.length t - 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= u then lo := mid else hi := mid
  done;
  !lo

let equal a b = a = b

let merge t k =
  if k < 0 || k + 1 >= partition_count t then invalid_arg "Partition.merge: out of range";
  of_cuts (Array.append (Array.sub t 0 (k + 1)) (Array.sub t (k + 2) (Array.length t - k - 2)))

let split t k ~at =
  let s = span_at t k in
  if at <= s.start_ || at >= s.stop then invalid_arg "Partition.split: cut outside span";
  let before = Array.sub t 0 (k + 1) in
  let after = Array.sub t (k + 1) (Array.length t - k - 1) in
  of_cuts (Array.concat [ before; [| at |]; after ])

let move t k ~delta =
  if k < 0 || k + 1 >= partition_count t then invalid_arg "Partition.move: out of range";
  let moved = Array.copy t in
  let cut = moved.(k + 1) + delta in
  if cut <= moved.(k) || cut >= moved.(k + 2) then
    invalid_arg "Partition.move: would empty a partition";
  moved.(k + 1) <- cut;
  of_cuts moved

let pp ppf t =
  let span s = Format.asprintf "[%d,%d)" s.start_ s.stop in
  Format.fprintf ppf "{%s}" (String.concat " " (List.map span (spans t)))
