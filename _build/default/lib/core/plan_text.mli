(** Plan serialization.

    A compiled plan is fully determined by (model, chip, batch, objective,
    scheme, partition cuts): everything else — replication, mapping,
    estimates — is recomputed deterministically.  This module stores that
    tuple in a small line-oriented format so expensive GA searches can be
    archived and reloaded:

    {v
    compass-plan 1
    model resnet18
    chip M
    batch 16
    objective latency
    scheme compass
    cuts 0 11 21 29 54 82 84
    v}

    The model is referenced by zoo name; plans for custom graphs embed the
    model inline after a [model-text] marker using [Model_text]. *)

val to_string : Compiler.t -> string

val save : string -> Compiler.t -> unit
(** [save path plan] writes [to_string plan]. *)

exception Load_error of string

val of_string : string -> Compiler.t
(** Rebuild the plan: re-derives units, validity, dataflow and estimates
    for the stored cuts.  Raises [Load_error] on malformed input, unknown
    model/chip names, or cuts that do not match the decomposition
    (e.g. the file was produced for different hardware). *)

val load : string -> Compiler.t
(** [load path] reads and parses a file. *)
