(** Partitions and partition groups.

    A {e partition} is a contiguous span [\[start, stop)] of the unit
    decomposition order; a {e partition group} (the GA chromosome) is a
    sequence of partitions that exactly covers [\[0, M)].  The group is
    stored as its cut positions [\[|0; c1; ...; M|\]]. *)

type span = {
  start_ : int;  (** Inclusive. *)
  stop : int;  (** Exclusive. *)
}

type t
(** A partition group. *)

val of_cuts : int array -> t
(** Raises [Invalid_argument] unless the array is strictly increasing,
    starts at 0, and has length >= 2. *)

val of_spans : span list -> t
(** Raises [Invalid_argument] unless the spans tile [\[0, M)]
    contiguously. *)

val singleton : int -> t
(** [singleton m] is the one-partition group covering [\[0, m)]. *)

val cuts : t -> int array
(** A fresh copy of the cut array. *)

val spans : t -> span list

val partition_count : t -> int

val total_units : t -> int

val span_at : t -> int -> span
(** [span_at t k] is the [k]-th partition.  Raises [Invalid_argument] when
    out of range. *)

val partition_of_unit : t -> int -> int
(** Index of the partition containing a unit (binary search).  Raises
    [Invalid_argument] for units outside [\[0, total_units)]. *)

val span_length : span -> int

val equal : t -> t -> bool

val merge : t -> int -> t
(** [merge t k] fuses partitions [k] and [k+1].  Raises [Invalid_argument]
    when [k+1] is out of range. *)

val split : t -> int -> at:int -> t
(** [split t k ~at] cuts partition [k] at absolute unit position [at]
    (strictly inside the span). *)

val move : t -> int -> delta:int -> t
(** [move t k ~delta] shifts the cut between partitions [k] and [k+1] by
    [delta] units; the result must keep both spans non-empty. *)

val pp : Format.formatter -> t -> unit
