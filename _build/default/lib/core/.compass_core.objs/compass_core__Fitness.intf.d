lib/core/fitness.mli: Estimator
