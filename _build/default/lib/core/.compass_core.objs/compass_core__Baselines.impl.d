lib/core/baselines.ml: List Partition Unit_gen Validity
