lib/core/memory_alloc.mli:
