lib/core/validity.ml: Array Compass_arch Compass_nn Compass_util List Mapping Partition Printf Unit_gen
