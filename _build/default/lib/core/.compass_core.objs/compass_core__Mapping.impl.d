lib/core/mapping.ml: Array Compass_arch Config Format List Printf Unit_gen
