lib/core/replication.ml: Array Compass_arch Compass_nn Config Dataflow Format List Mapping Option Perf_model Unit_gen
