lib/core/compiler.mli: Compass_arch Compass_dram Compass_isa Compass_nn Dataflow Estimator Fitness Format Ga Partition Scheduler Unit_gen Validity
