lib/core/replication.mli: Compass_nn Dataflow Format Unit_gen
