lib/core/plan_text.ml: Array Buffer Compass_arch Compass_nn Compiler Dataflow Estimator Fitness Hashtbl List Option Partition Printf String Unit_gen Validity
