lib/core/baselines.mli: Partition Validity
