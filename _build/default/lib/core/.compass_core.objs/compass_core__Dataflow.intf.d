lib/core/dataflow.mli: Compass_nn Partition Unit_gen
