lib/core/perf_model.ml: Array Compass_arch Compass_nn Config Crossbar Dataflow Graph Layer List Unit_gen
