lib/core/weight_layout.ml: Array Compass_arch Compass_nn Config Crossbar Dataflow Graph Hashtbl Layer List Mapping Option Partition Printf Quant Replication Unit_gen
