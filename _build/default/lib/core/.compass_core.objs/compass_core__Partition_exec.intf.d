lib/core/partition_exec.mli: Compass_nn Dataflow Partition
