lib/core/estimator.mli: Compass_nn Dataflow Format Hashtbl Partition Replication
