lib/core/fitness.ml: Array Estimator List String
