lib/core/partition.mli: Format
