lib/core/memory_alloc.ml: List Printf
