lib/core/pipeline_sim.mli: Compass_nn Dataflow
