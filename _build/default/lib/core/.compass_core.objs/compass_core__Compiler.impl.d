lib/core/compiler.ml: Baselines Compass_arch Compass_dram Compass_isa Compass_nn Dataflow Estimator Fitness Format Ga Mapping Partition Printf Scheduler String Unit_gen Validity
