lib/core/pipeline_sim.ml: Array Compass_nn Dataflow Estimator Graph Hashtbl Layer List Perf_model Replication Unit_gen
