lib/core/validity.mli: Compass_util Partition Unit_gen
