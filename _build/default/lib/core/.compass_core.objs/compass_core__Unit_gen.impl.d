lib/core/unit_gen.ml: Array Compass_arch Compass_nn Config Crossbar Format Graph Layer List
