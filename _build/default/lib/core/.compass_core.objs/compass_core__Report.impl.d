lib/core/report.ml: Compass_nn Compass_util Compiler Estimator List Partition Printf Replication String Table Units
