lib/core/dataflow.ml: Array Compass_arch Compass_nn Graph Hashtbl Layer List Option Partition Shape Unit_gen
