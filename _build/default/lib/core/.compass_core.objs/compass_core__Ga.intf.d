lib/core/ga.mli: Dataflow Estimator Fitness Partition Validity
