lib/core/explore.ml: Compass_arch Compass_util Compiler Estimator List Printf Table Units
