lib/core/plan_text.mli: Compiler
