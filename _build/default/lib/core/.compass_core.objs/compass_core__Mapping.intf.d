lib/core/mapping.mli: Format Unit_gen
