lib/core/partition_exec.ml: Array Compass_nn Dataflow Executor Graph Hashtbl List Option Partition Printf Tensor Unit_gen
