lib/core/unit_gen.mli: Compass_arch Compass_nn Format
