lib/core/report.mli: Compass_arch Compass_nn Compass_util Compiler Fitness Ga
