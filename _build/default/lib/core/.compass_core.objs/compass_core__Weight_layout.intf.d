lib/core/weight_layout.mli: Compass_nn Dataflow Partition
