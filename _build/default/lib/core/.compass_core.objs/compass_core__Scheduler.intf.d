lib/core/scheduler.mli: Compass_dram Compass_isa Dataflow Partition
