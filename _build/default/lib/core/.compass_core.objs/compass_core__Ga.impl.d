lib/core/ga.ml: Array Compass_util Estimator Fitness Hashtbl List Partition Rng Validity
