lib/core/perf_model.mli: Compass_nn Dataflow
