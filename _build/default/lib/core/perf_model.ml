open Compass_nn
open Compass_arch

type layer_perf = {
  node : Graph.node;
  mvms : int;
  tiles_in_span : int;
  weight_bytes_in_span : float;
  op_time_s : float;
  macro_ops_per_mvm : int;
  vfu_ops_per_mvm : int;
}

let ceil_div a b = (a + b - 1) / b

let span_layers ctx ~start_ ~stop =
  let units = Dataflow.units ctx in
  let model = units.Unit_gen.model in
  let chip = units.Unit_gen.chip in
  let xbar = chip.Config.crossbar in
  let io = Dataflow.span_io ctx ~start_ ~stop in
  let perf node =
    let op = (Graph.layer model node).Layer.op in
    let rows = Layer.weight_rows op in
    let cols = Layer.weight_cols op in
    let row_blocks = ceil_div rows xbar.Crossbar.rows in
    (* Units of a layer are contiguous in decomposition order. *)
    let unit_idxs =
      List.filter (fun i -> i >= start_ && i < stop) (Unit_gen.units_of_layer units node)
    in
    let tiles_in_span =
      List.fold_left (fun acc i -> acc + units.Unit_gen.units.(i).Unit_gen.tiles) 0 unit_idxs
    in
    let weight_bytes_in_span =
      List.fold_left
        (fun acc i -> acc +. units.Unit_gen.units.(i).Unit_gen.weight_bytes)
        0. unit_idxs
    in
    let mvms = Graph.mvms_of model node in
    (* VFU merge per MVM: accumulate [row_blocks] partial sums and apply the
       fused activation for each output of the span's column share. *)
    let span_cols =
      List.fold_left
        (fun acc i ->
          let u = units.Unit_gen.units.(i) in
          acc + (u.Unit_gen.col_hi - u.Unit_gen.col_lo))
        0 unit_idxs
    in
    let span_cols = min cols span_cols in
    let vfu_ops_per_mvm = span_cols * (row_blocks + 1) in
    let hosting_cores =
      max 1 (ceil_div tiles_in_span chip.Config.core.Config.macros_per_core)
    in
    let lanes = chip.Config.core.Config.vfus_per_core * hosting_cores in
    let vfu_time =
      float_of_int vfu_ops_per_mvm
      /. float_of_int lanes /. chip.Config.core.Config.clock_hz
    in
    {
      node;
      mvms;
      tiles_in_span;
      weight_bytes_in_span;
      op_time_s = xbar.Crossbar.mvm_latency_s +. vfu_time;
      macro_ops_per_mvm = tiles_in_span;
      vfu_ops_per_mvm;
    }
  in
  List.map perf io.Dataflow.weighted_layers

let stage_time_s perf ~replication =
  if replication < 1 then invalid_arg "Perf_model.stage_time_s: replication < 1";
  float_of_int perf.mvms *. perf.op_time_s /. float_of_int replication

let attached_vfu_ops ctx io =
  let model = (Dataflow.units ctx).Unit_gen.model in
  List.fold_left
    (fun acc node -> acc + Graph.vector_ops_of model node)
    0 io.Dataflow.attached

let max_useful_replication perf = max 1 perf.mvms
