open Compass_nn

type stage = {
  node : Graph.node;
  items : int;
  item_time_s : float;
  producers : int list;
}

type result = {
  makespan_s : float;
  stage_busy_s : float array;
  bottleneck_index : int;
}

(* Nearest weighted-in-span ancestors of [node], looking through attached
   non-weighted nodes. *)
let weighted_ancestors model in_span node =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec walk n =
    if not (Hashtbl.mem seen n) then begin
      Hashtbl.add seen n ();
      List.iter
        (fun p ->
          let op = (Graph.layer model p).Layer.op in
          if Layer.is_weighted op && in_span p then acc := p :: !acc
          else if not (Layer.is_weighted op) then walk p)
        (Graph.preds model n)
    end
  in
  walk node;
  List.sort_uniq compare !acc

let stages_of_span ctx ~batch ~start_ ~stop =
  if batch < 1 then invalid_arg "Pipeline_sim.stages_of_span: batch < 1";
  let units = Dataflow.units ctx in
  let model = units.Unit_gen.model in
  let layers = Perf_model.span_layers ctx ~start_ ~stop in
  let replication = Replication.allocate ctx ~batch ~start_ ~stop in
  let index = Hashtbl.create 16 in
  List.iteri (fun i (p : Perf_model.layer_perf) -> Hashtbl.add index p.Perf_model.node i) layers;
  let in_span node = Hashtbl.mem index node in
  List.map
    (fun (p : Perf_model.layer_perf) ->
      let r = Replication.replication_of replication p.Perf_model.node in
      {
        node = p.Perf_model.node;
        items = max 1 p.Perf_model.mvms;
        item_time_s = p.Perf_model.op_time_s /. float_of_int r;
        producers =
          List.map (Hashtbl.find index)
            (weighted_ancestors model in_span p.Perf_model.node);
      })
    layers

let simulate ~batch stages =
  if stages = [] then invalid_arg "Pipeline_sim.simulate: no stages";
  if batch < 1 then invalid_arg "Pipeline_sim.simulate: batch < 1";
  let stages = Array.of_list stages in
  let n = Array.length stages in
  Array.iteri
    (fun i s ->
      List.iter
        (fun p ->
          if p < 0 || p >= n then invalid_arg "Pipeline_sim.simulate: bad producer";
          if p >= i then invalid_arg "Pipeline_sim.simulate: producers must precede")
        s.producers)
    stages;
  let totals = Array.map (fun s -> batch * s.items) stages in
  let completion = Array.map (fun total -> Array.make total 0.) totals in
  let makespan = ref 0. in
  let busy = Array.make n 0. in
  for l = 0 to n - 1 do
    let s = stages.(l) in
    let total = totals.(l) in
    let free = ref 0. in
    for k = 0 to total - 1 do
      (* Producer p must have produced the matching progress fraction. *)
      let ready =
        List.fold_left
          (fun acc p ->
            let needed =
              min (totals.(p) - 1)
                ((k + 1) * totals.(p) / total)
            in
            max acc completion.(p).(max 0 needed))
          0. s.producers
      in
      let start = max !free ready in
      let finish = start +. s.item_time_s in
      completion.(l).(k) <- finish;
      free := finish
    done;
    busy.(l) <- float_of_int total *. s.item_time_s;
    makespan := max !makespan completion.(l).(total - 1)
  done;
  let bottleneck = ref 0 in
  Array.iteri (fun i b -> if b > busy.(!bottleneck) then bottleneck := i) busy;
  { makespan_s = !makespan; stage_busy_s = busy; bottleneck_index = !bottleneck }

let estimator_agreement ctx ~batch ~start_ ~stop =
  let stages = stages_of_span ctx ~batch ~start_ ~stop in
  let sim = simulate ~batch stages in
  let sp = Estimator.span_perf ctx ~batch ~start_ ~stop in
  sim.makespan_s /. sp.Estimator.compute_s
