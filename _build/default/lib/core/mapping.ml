open Compass_arch

type assignment = {
  unit_index : int;
  replica : int;
  tiles : int;
}

type t = {
  cores : assignment list array;
  tiles_used : int array;
  total_tiles : int;
  capacity_per_core : int;
}

let pack (units : Unit_gen.t) ~start_ ~stop ~replication =
  let chip = units.Unit_gen.chip in
  let ncores = chip.Config.cores in
  let capacity = chip.Config.core.Config.macros_per_core in
  if start_ < 0 || stop > Unit_gen.unit_count units || start_ >= stop then
    invalid_arg "Mapping.pack: bad span";
  (* Expand replicas, then first-fit-decreasing. *)
  let items = ref [] in
  (try
     for i = start_ to stop - 1 do
       let u = units.Unit_gen.units.(i) in
       let r = replication i in
       if r < 1 then invalid_arg "Mapping.pack: replication < 1";
       if u.Unit_gen.tiles > capacity then
         raise (Failure (Printf.sprintf "unit %d exceeds a core (%d tiles)" i u.Unit_gen.tiles));
       for replica = 0 to r - 1 do
         items := { unit_index = i; replica; tiles = u.Unit_gen.tiles } :: !items
       done
     done
   with Failure msg ->
     items := [];
     raise (Invalid_argument ("Mapping.pack: " ^ msg)));
  let sorted = List.sort (fun a b -> compare b.tiles a.tiles) !items in
  let cores = Array.make ncores [] in
  let tiles_used = Array.make ncores 0 in
  let place item =
    let rec fit c =
      if c >= ncores then false
      else if tiles_used.(c) + item.tiles <= capacity then begin
        cores.(c) <- item :: cores.(c);
        tiles_used.(c) <- tiles_used.(c) + item.tiles;
        true
      end
      else fit (c + 1)
    in
    fit 0
  in
  let rec place_all = function
    | [] -> Ok ()
    | item :: rest -> if place item then place_all rest else Error item
  in
  match place_all sorted with
  | Error item ->
    Error
      (Printf.sprintf "unit %d replica %d (%d tiles) does not fit" item.unit_index
         item.replica item.tiles)
  | Ok () ->
    let total_tiles = Array.fold_left ( + ) 0 tiles_used in
    Ok { cores = Array.map List.rev cores; tiles_used; total_tiles; capacity_per_core = capacity }

let feasible units ~start_ ~stop =
  match pack units ~start_ ~stop ~replication:(fun _ -> 1) with
  | Ok _ -> true
  | Error _ -> false
  | exception Invalid_argument _ -> false

let cores_used t =
  Array.fold_left (fun acc used -> if used > 0 then acc + 1 else acc) 0 t.tiles_used

let utilization t =
  let capacity = Array.length t.cores * t.capacity_per_core in
  if capacity = 0 then 0. else float_of_int t.total_tiles /. float_of_int capacity

let pp ppf t =
  Array.iteri
    (fun c assignments ->
      if assignments <> [] then
        Format.fprintf ppf "core %2d: %2d tiles, %d units@." c t.tiles_used.(c)
          (List.length assignments))
    t.cores

let core_of_unit t ~unit_index ~replica =
  let found = ref None in
  Array.iteri
    (fun c assignments ->
      if !found = None
         && List.exists (fun a -> a.unit_index = unit_index && a.replica = replica) assignments
      then found := Some c)
    t.cores;
  match !found with Some c -> c | None -> raise Not_found
