(** Global-memory allocator for inter-partition tensors.

    A first-fit free-list allocator over a byte address range.  The
    scheduler allocates every boundary tensor when its producing partition
    stores it and frees it after its last consuming partition, so peak
    usage tracks the liveness the paper's memory-access management
    implies. *)

type t

val create : ?base:int -> ?alignment:int -> capacity:int -> unit -> t
(** [create ~capacity ()] manages [\[base, base + capacity)].
    [alignment] (default 64) rounds sizes and addresses.  Raises
    [Invalid_argument] on non-positive capacity or alignment. *)

val alloc : t -> bytes:int -> tag:string -> int
(** First-fit allocation; returns the address.  Raises [Failure] when no
    free block fits (the scheduler treats this as a spill diagnostic). *)

val free : t -> int -> unit
(** Release by address, coalescing adjacent free blocks.  Raises
    [Invalid_argument] on an address that is not live. *)

val live_bytes : t -> int

val live_blocks : t -> (int * int * string) list
(** (address, bytes, tag) of live allocations, ascending. *)

val high_water_bytes : t -> int
(** Peak [live_bytes] observed. *)

val capacity : t -> int

val check_invariants : t -> (unit, string) result
(** Free and live blocks are disjoint, sorted, within range, and cover the
    arena exactly. *)
