let greedy validity =
  let m = Validity.size validity in
  let rec walk acc pos =
    if pos >= m then List.rev acc
    else
      let stop = Validity.max_end validity pos in
      walk ({ Partition.start_ = pos; stop } :: acc) stop
  in
  Partition.of_spans (walk [] 0)

let layerwise validity =
  let units = Validity.units validity in
  let m = Validity.size validity in
  (* Cut at every layer boundary; further split any layer that does not fit
     the chip in one piece. *)
  let layer_bounds =
    List.concat_map
      (fun (_, idxs) -> match idxs with [] -> [] | first :: _ -> [ first ])
      units.Unit_gen.layer_units
  in
  let bounds = List.sort_uniq compare (layer_bounds @ [ m ]) in
  let rec spans acc = function
    | [] | [ _ ] -> List.rev acc
    | lo :: (hi :: _ as rest) ->
      let rec cover acc pos =
        if pos >= hi then acc
        else
          let stop = min hi (Validity.max_end validity pos) in
          cover ({ Partition.start_ = pos; stop } :: acc) stop
      in
      spans (cover acc lo) rest
  in
  Partition.of_spans (spans [] bounds)

let scheme_names = [ "compass"; "greedy"; "layerwise" ]
