(** Pixel-level discrete simulation of one partition's layer pipeline.

    The estimator collapses intra-partition execution to the closed form
    [fill + B * bottleneck] (ISAAC/PipeLayer-style).  This module checks
    that form against an explicit simulation: every layer is a station
    processing its per-sample MVM stream at [op_time / replication] per
    item, consuming its producers' outputs at the pixel granularity the
    receptive field allows.

    The simulation is intentionally simple — single-sample items per stage,
    dependencies approximated as "stage l may process item k once every
    producer has finished item k" at matching progress fractions — but it
    is an independent derivation, so agreement with the closed form is
    evidence, not tautology. *)

type stage = {
  node : Compass_nn.Graph.node;
  items : int;  (** Per-sample work items (MVMs). *)
  item_time_s : float;  (** Per-item service time after replication. *)
  producers : int list;  (** Indices into the partition's stage list. *)
}

type result = {
  makespan_s : float;
  stage_busy_s : float array;  (** Total service time per stage. *)
  bottleneck_index : int;
}

val stages_of_span : Dataflow.ctx -> batch:int -> start_:int -> stop:int -> stage list
(** Build the station list from the span's layers and replication
    allocation (same inputs the estimator uses). *)

val simulate : batch:int -> stage list -> result
(** Run the pipeline for [batch] samples.  Raises [Invalid_argument] on an
    empty stage list or producer index out of range. *)

val estimator_agreement : Dataflow.ctx -> batch:int -> start_:int -> stop:int -> float
(** Ratio (simulated / estimator compute time) for one span; tests assert
    it stays within a small band around 1. *)
