type block = {
  addr : int;
  bytes : int;
  tag : string;
}

type t = {
  base : int;
  alignment : int;
  arena : int;
  mutable free_list : (int * int) list; (* (addr, bytes), ascending, coalesced *)
  mutable live : block list; (* ascending by addr *)
  mutable live_total : int;
  mutable high_water : int;
}

let create ?(base = 0) ?(alignment = 64) ~capacity () =
  if capacity <= 0 then invalid_arg "Memory_alloc.create: non-positive capacity";
  if alignment <= 0 then invalid_arg "Memory_alloc.create: non-positive alignment";
  if base < 0 then invalid_arg "Memory_alloc.create: negative base";
  {
    base;
    alignment;
    arena = capacity;
    free_list = [ (base, capacity) ];
    live = [];
    live_total = 0;
    high_water = 0;
  }

let round_up t n = (n + t.alignment - 1) / t.alignment * t.alignment

let alloc t ~bytes ~tag =
  if bytes <= 0 then invalid_arg "Memory_alloc.alloc: non-positive size";
  let need = round_up t bytes in
  let rec take acc = function
    | [] -> raise (Failure (Printf.sprintf "Memory_alloc: no block for %d bytes (%s)" need tag))
    | (addr, avail) :: rest when avail >= need ->
      let remainder = if avail > need then [ (addr + need, avail - need) ] else [] in
      t.free_list <- List.rev_append acc (remainder @ rest);
      addr
    | blk :: rest -> take (blk :: acc) rest
  in
  let addr = take [] t.free_list in
  let block = { addr; bytes = need; tag } in
  t.live <- List.sort (fun a b -> compare a.addr b.addr) (block :: t.live);
  t.live_total <- t.live_total + need;
  t.high_water <- max t.high_water t.live_total;
  addr

let free t addr =
  match List.partition (fun b -> b.addr = addr) t.live with
  | [], _ -> invalid_arg (Printf.sprintf "Memory_alloc.free: 0x%x is not live" addr)
  | [ block ], rest ->
    t.live <- rest;
    t.live_total <- t.live_total - block.bytes;
    let merged =
      List.sort compare ((block.addr, block.bytes) :: t.free_list)
    in
    (* Coalesce adjacent free blocks. *)
    let rec coalesce = function
      | (a1, s1) :: (a2, s2) :: rest when a1 + s1 = a2 -> coalesce ((a1, s1 + s2) :: rest)
      | blk :: rest -> blk :: coalesce rest
      | [] -> []
    in
    t.free_list <- coalesce merged
  | _ :: _ :: _, _ -> assert false

let live_bytes t = t.live_total
let live_blocks t = List.map (fun b -> (b.addr, b.bytes, b.tag)) t.live
let high_water_bytes t = t.high_water
let capacity t = t.arena

let check_invariants t =
  let segments =
    List.sort compare
      (List.map (fun b -> (b.addr, b.bytes, `Live)) t.live
      @ List.map (fun (a, s) -> (a, s, `Free)) t.free_list)
  in
  let rec walk expected = function
    | [] -> if expected = t.base + t.arena then Ok () else Error "arena not fully covered"
    | (addr, bytes, _) :: rest ->
      if addr <> expected then Error (Printf.sprintf "gap or overlap at 0x%x" addr)
      else if bytes <= 0 then Error "non-positive segment"
      else walk (addr + bytes) rest
  in
  walk t.base segments
