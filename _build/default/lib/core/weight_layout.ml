open Compass_nn
open Compass_arch

type macro_image = {
  layer : Graph.node;
  unit_index : int;
  replica : int;
  core : int;
  row_block : int;
  col_block : int;
  codes : int array;
}

type t = {
  partition : int;
  images : macro_image list;
  specs : (Graph.node * Quant.spec) list;
}

(* Weight matrix semantics: element (row r, column c) is weight
   [codes.(c * rows + r)] — one column per output channel, rows covering
   the flattened (grouped) input window, matching [Tensor]'s layouts. *)
let pack_partition ctx group ~partition ~weights ?bits () =
  let units = Dataflow.units ctx in
  let chip = units.Unit_gen.chip in
  let xbar = chip.Config.crossbar in
  let bits = Option.value bits ~default:xbar.Crossbar.weight_bits in
  if partition < 0 || partition >= Partition.partition_count group then
    invalid_arg "Weight_layout.pack_partition: partition out of range";
  let span = Partition.span_at group partition in
  let start_ = span.Partition.start_ and stop = span.Partition.stop in
  let batch_free = 1 in
  let replication = Replication.allocate ctx ~batch:batch_free ~start_ ~stop in
  let mapping =
    match
      Mapping.pack units ~start_ ~stop
        ~replication:(Replication.unit_replication replication units)
    with
    | Ok m -> m
    | Error msg -> invalid_arg ("Weight_layout.pack_partition: " ^ msg)
  in
  let model = units.Unit_gen.model in
  (* Quantize each layer present in the span once. *)
  let quantized : (Graph.node, float array * Quant.spec) Hashtbl.t = Hashtbl.create 8 in
  let quantize_layer node =
    match Hashtbl.find_opt quantized node with
    | Some q -> q
    | None ->
      let raw =
        match Hashtbl.find_opt weights node with
        | Some w -> w
        | None ->
          invalid_arg
            (Printf.sprintf "Weight_layout: missing weights for node %d" node)
      in
      let snapped, spec = Quant.quantize ~bits raw in
      Hashtbl.add quantized node (snapped, spec);
      (snapped, spec)
  in
  let lrows = xbar.Crossbar.rows in
  let lcols = Crossbar.logical_cols xbar in
  let images = ref [] in
  Array.iteri
    (fun core assignments ->
      List.iter
        (fun (a : Mapping.assignment) ->
          let u = units.Unit_gen.units.(a.Mapping.unit_index) in
          let node = u.Unit_gen.layer in
          let op = (Graph.layer model node).Layer.op in
          let rows_total = Layer.weight_rows op in
          let snapped, spec = quantize_layer node in
          let all_codes = Quant.codes spec snapped in
          let unit_rows = u.Unit_gen.row_hi - u.Unit_gen.row_lo in
          let unit_cols = u.Unit_gen.col_hi - u.Unit_gen.col_lo in
          let row_blocks = (unit_rows + lrows - 1) / lrows in
          let col_blocks = (unit_cols + lcols - 1) / lcols in
          for rb = 0 to row_blocks - 1 do
            for cb = 0 to col_blocks - 1 do
              let codes = Array.make (lrows * lcols) 0 in
              for r = 0 to lrows - 1 do
                for c = 0 to lcols - 1 do
                  let mr = u.Unit_gen.row_lo + (rb * lrows) + r in
                  let mc = u.Unit_gen.col_lo + (cb * lcols) + c in
                  if mr < u.Unit_gen.row_hi && mc < u.Unit_gen.col_hi then
                    codes.((r * lcols) + c) <-
                      all_codes.((mc * rows_total) + mr)
                done
              done;
              images :=
                {
                  layer = node;
                  unit_index = a.Mapping.unit_index;
                  replica = a.Mapping.replica;
                  core;
                  row_block = rb;
                  col_block = cb;
                  codes;
                }
                :: !images
            done
          done)
        assignments)
    mapping.Mapping.cores;
  {
    partition;
    images = List.rev !images;
    specs =
      Hashtbl.fold (fun node (_, spec) acc -> (node, spec) :: acc) quantized []
      |> List.sort compare;
  }

let total_macros t = List.length t.images

let programmed_bytes t =
  match t.specs with
  | [] -> 0.
  | (_, spec) :: _ ->
    float_of_int (List.length t.images)
    *. float_of_int (Array.length (List.hd t.images).codes)
    *. float_of_int spec.Quant.bits /. 8.

let reconstruct_layer ctx t node =
  let units = Dataflow.units ctx in
  let model = units.Unit_gen.model in
  let xbar = units.Unit_gen.chip.Config.crossbar in
  let lrows = xbar.Crossbar.rows in
  let lcols = Crossbar.logical_cols xbar in
  let op = (Graph.layer model node).Layer.op in
  let rows_total = Layer.weight_rows op in
  let cols_total = Layer.weight_cols op in
  match List.assoc_opt node t.specs with
  | None -> None
  | Some spec ->
    let out = Array.make (rows_total * cols_total) 0. in
    List.iter
      (fun img ->
        if img.layer = node && img.replica = 0 then begin
          let u = units.Unit_gen.units.(img.unit_index) in
          for r = 0 to lrows - 1 do
            for c = 0 to lcols - 1 do
              let mr = u.Unit_gen.row_lo + (img.row_block * lrows) + r in
              let mc = u.Unit_gen.col_lo + (img.col_block * lcols) + c in
              if mr < u.Unit_gen.row_hi && mc < u.Unit_gen.col_hi then
                out.((mc * rows_total) + mr) <-
                  float_of_int img.codes.((r * lcols) + c) *. spec.Quant.scale
            done
          done
        end)
      t.images;
    Some out
