(* Serving-latency study: what batch size should an online service use?

   The paper's batching discussion (Sec. II-B) is framed per batch; a
   deployment sees request *arrival* dynamics.  This example simulates a
   Poisson request stream against compiled ResNet18-S plans: requests
   accumulate until the batch fills (or a timeout fires), the batch runs
   for the plan's estimated batch latency, and per-request latency =
   queueing + batch execution.  Throughput-optimal batches are not
   tail-latency-optimal — the classic serving trade-off, quantified on
   COMPASS plans.

   Run with:  dune exec examples/serving_latency.exe *)

open Compass_core

let simulate_serving ~rng ~arrival_per_s ~batch ~latency_at_fill ~timeout_s ~requests =
  (* Exponential inter-arrival times; a single-chip executor.  A dispatch
     takes [latency_at_fill k] where [k] is how many requests it carries
     (partial batches still pay their weight-replacement rounds but less
     compute). *)
  let arrivals = Array.make requests 0. in
  let t = ref 0. in
  for i = 0 to requests - 1 do
    let u = max 1e-12 (Compass_util.Rng.float rng 1.) in
    t := !t +. (-.log u /. arrival_per_s);
    arrivals.(i) <- !t
  done;
  let latencies = Array.make requests 0. in
  let chip_free = ref 0. in
  let i = ref 0 in
  while !i < requests do
    let first = !i in
    let window_close = arrivals.(first) +. timeout_s in
    (* Collect up to [batch] requests that arrive before the timeout. *)
    let j = ref first in
    while
      !j + 1 < requests
      && !j + 1 - first < batch
      && arrivals.(!j + 1) <= window_close
    do
      incr j
    done;
    let fill = !j - first + 1 in
    let dispatch =
      max !chip_free (if fill = batch then arrivals.(!j) else window_close)
    in
    let finish = dispatch +. latency_at_fill fill in
    chip_free := finish;
    for k = first to !j do
      latencies.(k) <- finish -. arrivals.(k)
    done;
    i := !j + 1
  done;
  Array.to_list latencies

let () =
  let model = Compass_nn.Models.resnet18 () in
  let chip = Compass_arch.Config.chip_s in
  let arrival_per_s = 800. in
  let timeout_s = 10e-3 in
  Printf.printf
    "ResNet18 on chip S, Poisson arrivals at %.0f req/s, %.0f ms batching timeout\n\n"
    arrival_per_s (timeout_s *. 1e3);
  let table =
    Compass_util.Table.create
      ~aligns:Compass_util.Table.[ Right; Right; Right; Right; Right ]
      [ "batch"; "plan throughput"; "p50 latency"; "p99 latency"; "mean latency" ]
  in
  List.iter
    (fun batch ->
      let plan =
        Compiler.compile ~ga_params:Ga.quick_params ~model ~chip ~batch Compiler.Compass
      in
      (* Price every possible fill level of this plan once. *)
      let fills =
        Array.init batch (fun k ->
            (Estimator.evaluate plan.Compiler.ctx ~batch:(k + 1) plan.Compiler.group)
              .Estimator.batch_latency_s)
      in
      let latency_at_fill k = fills.(min (batch - 1) (max 0 (k - 1))) in
      let rng = Compass_util.Rng.create 2024 in
      let lat =
        simulate_serving ~rng ~arrival_per_s ~batch ~latency_at_fill ~timeout_s
          ~requests:4000
      in
      Compass_util.Table.add_row table
        [
          string_of_int batch;
          Printf.sprintf "%.0f/s" plan.Compiler.perf.Estimator.throughput_per_s;
          Compass_util.Units.time_to_string (Compass_util.Stats.percentile 50. lat);
          Compass_util.Units.time_to_string (Compass_util.Stats.percentile 99. lat);
          Compass_util.Units.time_to_string (Compass_util.Stats.mean lat);
        ])
    [ 1; 2; 4; 8; 16; 32 ];
  Compass_util.Table.print table;
  print_newline ();
  print_endline
    "Small batches cannot sustain the arrival rate (queues diverge into the\n\
     p99); very large batches add waiting and per-sample completion delay.\n\
     The serving sweet spot sits near the EDP sweet spot of Fig. 8 — weight\n\
     replacement wants batching, tail latency caps it.";
  (* The numbers above are *estimated* accelerator latencies.  For a
     functional sanity check of the serving path itself, run a real batch
     through the host executor's im2col/GEMM kernels and report the
     measured host serving rate. *)
  print_newline ();
  let weights = Compass_nn.Executor.random_weights ~seed:7 model in
  let inputs =
    Array.init 4 (fun i -> Compass_nn.Executor.random_input ~seed:(7 + i) model)
  in
  let t0 = Unix.gettimeofday () in
  let outs = Compass_nn.Executor.output_batch model weights inputs in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "Host functional replay (gemm engine): batch %d in %s — %.2f images/s\n"
    (Array.length outs)
    (Compass_util.Units.time_to_string elapsed)
    (float_of_int (Array.length outs) /. elapsed)
