(* Fault-aware compilation: surviving dead and degraded cores.

   Crossbar macros wear out and cores fail; this walkthrough shows the
   three ways the compiler deals with that:

   1. compile *around* a known fault scenario (`Compiler.compile ~faults`),
   2. *repair* an existing plan when a chip degrades in the field
      (`Compiler.repair`, `Compiler.measure_with_faults`),
   3. account for write endurance and project device lifetime
      (`Report.endurance_table`, the `wear` objective),
   4. *self-heal* at inference time: ABFT checksums detect corrupted
      cells, transients are retried, persistents remapped to spare
      capacity (`Inject`, `Abft`, `Recovery`).

   Run with:  dune exec examples/fault_tolerance.exe *)

open Compass_core
open Compass_arch

let model = Compass_nn.Models.resnet18 ()
let chip = Config.chip_m
let batch = 16
let mpc = chip.Config.core.Config.macros_per_core

let () =
  (* -- 1. Compile against a known scenario -------------------------- *)
  (* Scenarios are one-line specs (grammar in docs/FORMATS.md): cores 3
     and 11 are dead, core 5 has only 8 of its 16 macros left. *)
  let scenario = "dead:3,11;degraded:5=8" in
  let faults = Fault.of_string scenario ~seed:0 ~cores:chip.Config.cores ~macros_per_core:mpc in
  Format.printf "scenario %S: %a@." scenario Fault.pp faults;

  let healthy = Compiler.compile ~model ~chip ~batch Compiler.Greedy in
  let faulted = Compiler.compile ~faults ~model ~chip ~batch Compiler.Greedy in
  let latency p = p.Compiler.perf.Estimator.batch_latency_s in
  Printf.printf "healthy chip: %s/batch;  faulted chip: %s/batch (%.2fx)\n"
    (Compass_util.Units.time_to_string (latency healthy))
    (Compass_util.Units.time_to_string (latency faulted))
    (latency faulted /. latency healthy);

  (* The plan provably avoids the dead cores: re-pack each partition and
     look at the per-core tile counts. *)
  List.iter
    (fun (s : Partition.span) ->
      match
        Mapping.pack ~faults faulted.Compiler.units ~start_:s.Partition.start_
          ~stop:s.Partition.stop ~replication:(fun _ -> 1)
      with
      | Ok m ->
        assert (m.Mapping.tiles_used.(3) = 0);
        assert (m.Mapping.tiles_used.(11) = 0);
        assert (m.Mapping.tiles_used.(5) <= 8)
      | Error e -> failwith e)
    (Partition.spans faulted.Compiler.group);
  print_endline "every partition avoids cores 3/11 and stays within core 5's 8 macros";

  (* -- 2. Field failure: repair the running plan -------------------- *)
  (* The same scenario strikes a chip that is already serving the healthy
     plan. `measure_with_faults` fail-stops the dead cores mid-simulation,
     repairs the plan, and reruns. *)
  let m = Compiler.measure healthy in
  let at_s = m.Compiler.sim.Compass_isa.Sim.makespan_s /. 3. in
  (match Compiler.measure_with_faults healthy ~at_s ~faults with
  | Error e -> failwith e
  | Ok run ->
    Printf.printf "\ncores 3 and 11 fail-stop at t=%s:\n"
      (Compass_util.Units.time_to_string at_s);
    Printf.printf "  interrupted run dropped %d instructions\n"
      run.Compiler.faulted_sim.Compass_isa.Sim.dropped_instructions;
    let r = run.Compiler.repair in
    Printf.printf "  repair strategy: %s (degradation %.2fx)\n"
      (match r.Compiler.strategy with
      | Compiler.Unchanged -> "re-map only, partitioning kept"
      | Compiler.Remapped n -> Printf.sprintf "%d span(s) re-split" n
      | Compiler.Recompiled -> "full recompile")
      r.Compiler.degradation;
    Printf.printf "  recovery latency (abort + rerun): %s\n"
      (Compass_util.Units.time_to_string run.Compiler.recovery_latency_s));

  (* -- 3. Endurance: how long until the chip wears out? ------------- *)
  (* ReRAM cells survive ~1e6 writes. Partitioned execution rewrites
     macros once per batch, so lifetime depends on the partitioning. *)
  let budget = Option.get Technology.reram.Technology.endurance_cycles in
  let wear_faults =
    Fault.make ~endurance_budget:budget (Array.make chip.Config.cores Fault.Healthy)
  in
  let plan = Compiler.compile ~faults:wear_faults ~model ~chip ~batch Compiler.Greedy in
  let e = plan.Compiler.perf.Estimator.endurance in
  Printf.printf "\nReRAM endurance (budget %.0e writes/macro):\n" budget;
  Printf.printf "  %.1f macro writes per inference, worst macro %.3f/inference\n"
    e.Estimator.writes_per_inference e.Estimator.max_writes_per_macro_per_inference;
  (match e.Estimator.projected_lifetime_inferences with
  | Some n ->
    Printf.printf "  projected lifetime: %.3g inferences (%.1f days at 100 inf/s)\n" n
      (n /. 100. /. 86400.)
  | None -> ());
  print_newline ();
  Compass_util.Table.print (Report.endurance_table [ plan ]);
  print_endline
    "\nto trade latency for lifetime, search with the wear objective:\n\
     Compiler.compile ~objective:Fitness.Wear (CLI: --objective wear)";

  (* -- 4. Self-healing: detect -> retry -> remap -------------------- *)
  (* A stored weight bit flips in service. The ABFT checksum row catches
     it before the layer's MVM (exact integer comparison, zero false
     negatives); retries fail (the flip is persistent), so the recovery
     engine retires the faulty core and repairs the plan — after which
     the output is bit-identical to the fault-free run. *)
  let weights = Compass_nn.Executor.random_weights model in
  let input = Compass_nn.Executor.random_input model in
  let cell_faults =
    Fault.of_string "flip:1" ~seed:0 ~cores:chip.Config.cores ~macros_per_core:mpc
  in
  let r = Recovery.run ~seed:42 ~faults:cell_faults ~weights ~input healthy in
  Printf.printf "\none persistent bit flip (%d sites realized):\n"
    (List.length r.Recovery.sites);
  List.iter (fun a -> Format.printf "  %a@." Recovery.pp_action a) r.Recovery.actions;
  Format.printf "  %a@." Recovery.pp_report r;
  Printf.printf "  recovered output bit-identical to fault-free run: %b\n"
    r.Recovery.bit_identical;

  (* Transients clear on retry alone — no remap, just backoff. *)
  let transient =
    Fault.of_string "transient:2" ~seed:0 ~cores:chip.Config.cores ~macros_per_core:mpc
  in
  let rt = Recovery.run ~seed:42 ~faults:transient ~weights ~input healthy in
  Printf.printf
    "two transient stuck-at cells: %d detected, %d retries, %d remaps, \
     bit-identical %b (backoff %s)\n"
    rt.Recovery.detections rt.Recovery.retries rt.Recovery.remaps
    rt.Recovery.bit_identical
    (Compass_util.Units.time_to_string rt.Recovery.backoff_total_s);
  print_endline
    "from the CLI: compass compile --faults 'flip:1' --recover --metrics"
